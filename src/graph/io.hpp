// Graph file I/O: whitespace edge lists (SNAP style) and conversion
// from/to symmetric matrices.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "sparse/csc.hpp"

namespace er {

/// Read "u v [weight]" lines ('#'/'%' comments, 0-based ids). Self-loops
/// are skipped; node count is 1 + max id unless `num_nodes` overrides it.
Graph read_edge_list(std::istream& in, index_t num_nodes = -1);
Graph read_edge_list_file(const std::string& path, index_t num_nodes = -1);

/// Write "u v weight" lines.
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Interpret a symmetric matrix's off-diagonal pattern as a weighted graph
/// (edge weight = |a_ij|); used to load UF-collection matrices as graphs,
/// mirroring the paper's treatment of circuit matrices.
Graph graph_from_symmetric_matrix(const CscMatrix& a);

}  // namespace er
