// Connected components and BFS utilities.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

struct Components {
  index_t count = 0;
  std::vector<index_t> label;  // node -> component id in [0, count)
};

/// Label connected components with iterative BFS.
Components connected_components(const Graph& g);

/// True if the graph has exactly one connected component (and >= 1 node).
bool is_connected(const Graph& g);

/// BFS order and parent array from a source node (parent[src] = -1;
/// unreachable nodes keep parent -2).
struct BfsTree {
  std::vector<index_t> order;    // visited nodes in BFS order
  std::vector<index_t> parent;   // -1 root, -2 unreached
  std::vector<index_t> level;    // distance from source (-1 unreached)
};
BfsTree bfs(const Graph& g, index_t source);

}  // namespace er
