#include "graph/laplacian.hpp"

#include <stdexcept>

#include "graph/components.hpp"

namespace er {

CscMatrix laplacian(const Graph& g) {
  TripletMatrix t(g.num_nodes(), g.num_nodes());
  t.reserve(4 * g.num_edges());
  for (const auto& e : g.edges()) t.stamp_conductance(e.u, e.v, e.weight);
  return CscMatrix::from_triplets(t);
}

CscMatrix incidence(const Graph& g) {
  const auto m = static_cast<index_t>(g.num_edges());
  TripletMatrix t(m, g.num_nodes());
  t.reserve(2 * g.num_edges());
  for (std::size_t eid = 0; eid < g.num_edges(); ++eid) {
    const Edge& e = g.edges()[eid];
    t.add(static_cast<index_t>(eid), e.u, 1.0);
    t.add(static_cast<index_t>(eid), e.v, -1.0);
  }
  return CscMatrix::from_triplets(t);
}

CscMatrix edge_weight_matrix(const Graph& g) {
  const auto m = static_cast<index_t>(g.num_edges());
  TripletMatrix t(m, m);
  t.reserve(g.num_edges());
  for (std::size_t eid = 0; eid < g.num_edges(); ++eid)
    t.add(static_cast<index_t>(eid), static_cast<index_t>(eid),
          g.edges()[eid].weight);
  return CscMatrix::from_triplets(t);
}

CscMatrix grounded_laplacian(const Graph& g, real_t ground_conductance,
                             std::vector<index_t>* grounded_nodes) {
  if (!(ground_conductance > 0.0))
    throw std::invalid_argument("grounded_laplacian: conductance must be > 0");
  TripletMatrix t(g.num_nodes(), g.num_nodes());
  t.reserve(4 * g.num_edges() + 4);
  for (const auto& e : g.edges()) t.stamp_conductance(e.u, e.v, e.weight);

  const auto comp = connected_components(g);
  std::vector<index_t> reps(static_cast<std::size_t>(comp.count), -1);
  for (index_t v = 0; v < g.num_nodes(); ++v) {
    const index_t c = comp.label[static_cast<std::size_t>(v)];
    if (reps[static_cast<std::size_t>(c)] < 0) {
      reps[static_cast<std::size_t>(c)] = v;
      t.add(v, v, ground_conductance);
    }
  }
  if (grounded_nodes) *grounded_nodes = reps;
  return CscMatrix::from_triplets(t);
}

CscMatrix laplacian_with_shunts(const Graph& g,
                                const std::vector<real_t>& shunts) {
  if (shunts.size() != static_cast<std::size_t>(g.num_nodes()))
    throw std::invalid_argument("laplacian_with_shunts: size mismatch");
  TripletMatrix t(g.num_nodes(), g.num_nodes());
  t.reserve(4 * g.num_edges() + shunts.size());
  for (const auto& e : g.edges()) t.stamp_conductance(e.u, e.v, e.weight);
  for (index_t v = 0; v < g.num_nodes(); ++v)
    if (shunts[static_cast<std::size_t>(v)] != 0.0)
      t.add(v, v, shunts[static_cast<std::size_t>(v)]);
  return CscMatrix::from_triplets(t);
}

}  // namespace er
