// Diagnostics over an approximate inverse: column-size and depth
// distributions, used by the ablation benches and by capacity planning.
#pragma once

#include <vector>

#include "approxinv/approx_inverse.hpp"
#include "chol/factor.hpp"
#include "util/types.hpp"

namespace er {

struct ApproxInverseProfile {
  offset_t total_nnz = 0;
  double mean_column_nnz = 0.0;
  index_t max_column_nnz = 0;
  /// Histogram of column sizes in powers of two: bucket k counts columns
  /// with nnz in [2^k, 2^{k+1}).
  std::vector<offset_t> column_size_histogram;
  /// nnz / (n log2 n) — the paper's normalized size.
  double nnz_ratio = 0.0;
};

ApproxInverseProfile profile_approx_inverse(const ApproxInverse& z);

struct DepthProfile {
  index_t max_depth = 0;
  double mean_depth = 0.0;
  /// Depth histogram in buckets of 32.
  std::vector<offset_t> histogram;
};

DepthProfile profile_depths(const CholFactor& factor);

}  // namespace er
