// Approximate-inverse preconditioning — a natural extension of the paper's
// machinery: since Z̃ ≈ L^{-1}, the product M^{-1} = Z̃^T Z̃ approximates
// A^{-1} directly and can be applied with two sparse passes over Z̃'s
// columns (no triangular solves, trivially parallelizable). Exposed as a
// solver-compatible application functor.
#pragma once

#include <vector>

#include "approxinv/approx_inverse.hpp"
#include "util/types.hpp"

namespace er {

/// Applies x := Z̃^T (Z̃ r) with the factor's permutation folded in, so the
/// result approximates A^{-1} r in *original* coordinates.
class ApproxInversePreconditioner {
 public:
  explicit ApproxInversePreconditioner(const ApproxInverse& z) : z_(&z) {}

  void apply(const std::vector<real_t>& r, std::vector<real_t>& out) const;

 private:
  const ApproxInverse* z_;
  mutable std::vector<real_t> work_;  // single-threaded scratch
};

}  // namespace er
