#include "approxinv/depth.hpp"

#include <algorithm>

namespace er {

std::vector<index_t> filled_graph_depths(const CholFactor& factor) {
  const index_t n = factor.n;
  std::vector<index_t> depth(static_cast<std::size_t>(n), 0);
  // depth(p) depends only on rows i > p, so sweep p = n-1 .. 0.
  for (index_t p = n; p-- > 0;) {
    const offset_t begin = factor.col_ptr[static_cast<std::size_t>(p)];
    const offset_t end = factor.col_ptr[static_cast<std::size_t>(p) + 1];
    index_t d = -1;  // becomes >= 0 iff an off-diagonal exists
    for (offset_t k = begin + 1; k < end; ++k) {
      const index_t i = factor.row_ind[static_cast<std::size_t>(k)];
      d = std::max(d, depth[static_cast<std::size_t>(i)]);
    }
    depth[static_cast<std::size_t>(p)] = d + 1;  // -1 + 1 == 0 for leaves
  }
  return depth;
}

index_t max_filled_graph_depth(const CholFactor& factor) {
  const auto depths = filled_graph_depths(factor);
  index_t m = 0;
  for (index_t d : depths) m = std::max(m, d);
  return m;
}

}  // namespace er
