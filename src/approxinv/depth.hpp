// Depth of nodes in the filled graph (paper Eq. (11)).
//
// The filled graph G_L = (V, F) is the undirected graph of the factor L's
// off-diagonal pattern. depth(p) = 0 when column p of L has no off-diagonal
// entry, otherwise 1 + max depth over the rows of column p. Theorem 1 bounds
// the approximate-inverse error of column p by depth(p) * epsilon.
#pragma once

#include <vector>

#include "chol/factor.hpp"
#include "util/types.hpp"

namespace er {

/// depth(p) for every node, in permuted (factor) coordinates.
std::vector<index_t> filled_graph_depths(const CholFactor& factor);

/// max_p depth(p) — the `dpt` column of the paper's Table I.
index_t max_filled_graph_depth(const CholFactor& factor);

}  // namespace er
