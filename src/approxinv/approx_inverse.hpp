// Algorithm 2 — sparse approximate inverse of the Cholesky factor.
//
// Columns of Z = L^{-1} obey the recurrence (paper Eq. (8))
//     z_j = (1/L_jj) e_j + sum_{i>j, L_ij != 0} (-L_ij / L_jj) z_i ,
// so they can be built from j = n-1 down to 0 using already-computed
// (approximate) columns. After building z*_j, the k smallest-magnitude
// entries are truncated, with k the largest value keeping the relative
// 1-norm error below epsilon (Eq. (10)); columns with at most log2(n)
// entries are never truncated (Alg. 2 line 3).
//
// Lemma 1 guarantees Z is nonnegative; Theorem 1 bounds the column error by
// depth(p) * epsilon. Both are exercised by tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "chol/factor.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/types.hpp"

namespace er {

struct ApproxInverseOptions {
  /// Relative 1-norm truncation budget per column (paper's epsilon = 1e-3).
  real_t epsilon = 1e-3;
};

/// Sparse approximation of L^{-1}, stored column-wise in *permuted* (factor)
/// coordinates. Columns live in a shared pool in computation order; use
/// column(j) / column_rows(j) / column_values(j) for access.
class ApproxInverse {
 public:
  /// Run Alg. 2 on a (complete or incomplete) Cholesky factor.
  static ApproxInverse build(const CholFactor& factor,
                             const ApproxInverseOptions& opts = {});

  [[nodiscard]] index_t dimension() const { return n_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(pool_rows_.size()); }

  [[nodiscard]] Span<index_t> column_rows(index_t j) const {
    return {pool_rows_.data() + col_offset_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(col_len_[static_cast<std::size_t>(j)])};
  }
  [[nodiscard]] Span<real_t> column_values(index_t j) const {
    return {pool_vals_.data() + col_offset_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(col_len_[static_cast<std::size_t>(j)])};
  }

  /// Copy of column j as a SparseVector.
  [[nodiscard]] SparseVector column(index_t j) const;

  /// ||z̃_p - z̃_q||_2^2 — the Alg. 3 query kernel, zero-copy.
  [[nodiscard]] real_t column_distance_squared(index_t p, index_t q) const;

  /// The permutation of the factor this inverse was built from (new -> old).
  [[nodiscard]] const std::vector<index_t>& perm() const { return perm_; }
  [[nodiscard]] const std::vector<index_t>& inv_perm() const { return inv_perm_; }

  /// Binary serialization: an expensive build can be cached on disk and
  /// reloaded for query-only sessions ("build once, query many").
  void save(std::ostream& out) const;
  static ApproxInverse load(std::istream& in);
  void save_file(const std::string& path) const;
  static ApproxInverse load_file(const std::string& path);

 private:
  index_t n_ = 0;
  std::vector<std::size_t> col_offset_;
  std::vector<index_t> col_len_;
  std::vector<index_t> pool_rows_;
  std::vector<real_t> pool_vals_;
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
};

}  // namespace er
