#include "approxinv/preconditioner.hpp"

#include <stdexcept>

namespace er {

void ApproxInversePreconditioner::apply(const std::vector<real_t>& r,
                                        std::vector<real_t>& out) const {
  const index_t n = z_->dimension();
  if (r.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("ApproxInversePreconditioner: size mismatch");

  const auto& perm = z_->perm();
  // u = Z (P r): u_i = sum_j Z_ij (P r)_j, accumulated column-wise.
  work_.assign(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    const real_t rj = r[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])];
    if (rj == 0.0) continue;
    const auto rows = z_->column_rows(j);
    const auto vals = z_->column_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k)
      work_[static_cast<std::size_t>(rows[k])] += vals[k] * rj;
  }
  // v = Z^T u: v_j = <z_j, u>; then out = P^T v.
  out.assign(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    const auto rows = z_->column_rows(j);
    const auto vals = z_->column_values(j);
    real_t acc = 0.0;
    for (std::size_t k = 0; k < rows.size(); ++k)
      acc += vals[k] * work_[static_cast<std::size_t>(rows[k])];
    out[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] = acc;
  }
}

}  // namespace er
