#include "approxinv/approx_inverse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace er {

ApproxInverse ApproxInverse::build(const CholFactor& factor,
                                   const ApproxInverseOptions& opts) {
  if (!(opts.epsilon >= 0.0))
    throw std::invalid_argument("ApproxInverse: epsilon must be >= 0");
  const index_t n = factor.n;

  ApproxInverse z;
  z.n_ = n;
  z.perm_ = factor.perm;
  z.inv_perm_ = factor.inv_perm;
  z.col_offset_.assign(static_cast<std::size_t>(n), 0);
  z.col_len_.assign(static_cast<std::size_t>(n), 0);
  // Heuristic pool reservation: a few entries per column, grows as needed.
  z.pool_rows_.reserve(static_cast<std::size_t>(n) * 8);
  z.pool_vals_.reserve(static_cast<std::size_t>(n) * 8);

  // The no-truncation floor from Alg. 2 line 3: nnz(z*_j) <= log n.
  const auto nnz_floor = static_cast<std::size_t>(
      std::max(1.0, std::log2(static_cast<double>(std::max<index_t>(n, 2)))));

  // Dense scatter workspace with stamping.
  std::vector<real_t> w(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);
  std::vector<index_t> pattern;
  std::vector<real_t> mags;  // |values| for the truncation selection

  for (index_t j = n; j-- > 0;) {
    pattern.clear();

    // Seed: (1/L_jj) e_j.
    const offset_t cb = factor.col_ptr[static_cast<std::size_t>(j)];
    const offset_t ce = factor.col_ptr[static_cast<std::size_t>(j) + 1];
    const real_t inv_ljj = 1.0 / factor.values[static_cast<std::size_t>(cb)];
    w[static_cast<std::size_t>(j)] = inv_ljj;
    stamp[static_cast<std::size_t>(j)] = j;
    pattern.push_back(j);

    // Accumulate (-L_ij / L_jj) * z̃_i over the off-diagonal entries of
    // column j of L.
    for (offset_t p = cb + 1; p < ce; ++p) {
      const index_t i = factor.row_ind[static_cast<std::size_t>(p)];
      const real_t coef = -factor.values[static_cast<std::size_t>(p)] * inv_ljj;
      if (coef == 0.0) continue;
      const auto rows = z.column_rows(i);
      const auto vals = z.column_values(i);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const index_t r = rows[k];
        if (stamp[static_cast<std::size_t>(r)] != j) {
          stamp[static_cast<std::size_t>(r)] = j;
          w[static_cast<std::size_t>(r)] = 0.0;
          pattern.push_back(r);
        }
        w[static_cast<std::size_t>(r)] += coef * vals[k];
      }
    }

    // Truncation (Eq. (10)): drop the largest set of smallest-|.| entries
    // whose 1-norm stays within epsilon * ||z*_j||_1.
    if (pattern.size() > nnz_floor && opts.epsilon > 0.0) {
      mags.clear();
      mags.reserve(pattern.size());
      real_t norm1 = 0.0;
      for (index_t r : pattern) {
        const real_t m = std::abs(w[static_cast<std::size_t>(r)]);
        mags.push_back(m);
        norm1 += m;
      }
      std::sort(mags.begin(), mags.end());
      const real_t budget = opts.epsilon * norm1;
      real_t dropped = 0.0;
      std::size_t k = 0;
      while (k < mags.size() && dropped + mags[k] <= budget) {
        dropped += mags[k];
        ++k;
      }
      if (k > 0) {
        // Keep entries with |v| > cut; among |v| == cut keep only as many
        // as needed so exactly k entries are dropped (ties broken
        // arbitrarily, matching trunc_k semantics).
        const real_t cut = mags[k - 1];
        std::size_t ties_to_drop = 0;
        for (std::size_t t = 0; t < k; ++t)
          if (mags[t] == cut) ++ties_to_drop;
        std::size_t wpos = 0;
        for (index_t r : pattern) {
          const real_t m = std::abs(w[static_cast<std::size_t>(r)]);
          if (m < cut) continue;
          if (m == cut) {
            if (ties_to_drop > 0) {
              --ties_to_drop;
              continue;
            }
          }
          pattern[wpos++] = r;
        }
        pattern.resize(wpos);
      }
    }

    std::sort(pattern.begin(), pattern.end());

    z.col_offset_[static_cast<std::size_t>(j)] = z.pool_rows_.size();
    z.col_len_[static_cast<std::size_t>(j)] =
        static_cast<index_t>(pattern.size());
    for (index_t r : pattern) {
      z.pool_rows_.push_back(r);
      z.pool_vals_.push_back(w[static_cast<std::size_t>(r)]);
    }
  }
  return z;
}

SparseVector ApproxInverse::column(index_t j) const {
  const auto rows = column_rows(j);
  const auto vals = column_values(j);
  SparseVector v;
  v.idx.assign(rows.begin(), rows.end());
  v.val.assign(vals.begin(), vals.end());
  return v;
}

real_t ApproxInverse::column_distance_squared(index_t p, index_t q) const {
  const auto pr = column_rows(p);
  const auto pv = column_values(p);
  const auto qr = column_rows(q);
  const auto qv = column_values(q);
  real_t acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < pr.size() && j < qr.size()) {
    if (pr[i] < qr[j]) {
      acc += pv[i] * pv[i];
      ++i;
    } else if (qr[j] < pr[i]) {
      acc += qv[j] * qv[j];
      ++j;
    } else {
      const real_t d = pv[i] - qv[j];
      acc += d * d;
      ++i;
      ++j;
    }
  }
  for (; i < pr.size(); ++i) acc += pv[i] * pv[i];
  for (; j < qr.size(); ++j) acc += qv[j] * qv[j];
  return acc;
}

}  // namespace er
