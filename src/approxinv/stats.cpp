#include "approxinv/stats.hpp"

#include <algorithm>
#include <cmath>

#include "approxinv/depth.hpp"

namespace er {

ApproxInverseProfile profile_approx_inverse(const ApproxInverse& z) {
  ApproxInverseProfile p;
  const index_t n = z.dimension();
  if (n == 0) return p;
  p.total_nnz = z.nnz();
  for (index_t j = 0; j < n; ++j) {
    const auto sz = static_cast<index_t>(z.column_rows(j).size());
    p.max_column_nnz = std::max(p.max_column_nnz, sz);
    std::size_t bucket = 0;
    while ((index_t{1} << (bucket + 1)) <= std::max<index_t>(sz, 1)) ++bucket;
    if (p.column_size_histogram.size() <= bucket)
      p.column_size_histogram.resize(bucket + 1, 0);
    ++p.column_size_histogram[bucket];
  }
  p.mean_column_nnz =
      static_cast<double>(p.total_nnz) / static_cast<double>(n);
  p.nnz_ratio = n >= 2 ? static_cast<double>(p.total_nnz) /
                             (static_cast<double>(n) *
                              std::log2(static_cast<double>(n)))
                       : 0.0;
  return p;
}

DepthProfile profile_depths(const CholFactor& factor) {
  DepthProfile p;
  const auto depths = filled_graph_depths(factor);
  if (depths.empty()) return p;
  double sum = 0.0;
  for (index_t d : depths) {
    p.max_depth = std::max(p.max_depth, d);
    sum += d;
    const auto bucket = static_cast<std::size_t>(d / 32);
    if (p.histogram.size() <= bucket) p.histogram.resize(bucket + 1, 0);
    ++p.histogram[bucket];
  }
  p.mean_depth = sum / static_cast<double>(depths.size());
  return p;
}

}  // namespace er
