// Binary (de)serialization for ApproxInverse.
//
// Format: magic "ERZI" + version, then n, perm, inv_perm, column table and
// pools, all little-endian native-width. Intended for same-machine caching,
// not as an interchange format.
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "approxinv/approx_inverse.hpp"
#include "order/mindeg.hpp"

namespace er {

namespace {

constexpr char kMagic[4] = {'E', 'R', 'Z', 'I'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("ApproxInverse::load: truncated input");
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void read_vec(std::istream& in, std::vector<T>& v) {
  std::uint64_t size = 0;
  read_pod(in, size);
  v.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw std::runtime_error("ApproxInverse::load: truncated input");
}

}  // namespace

void ApproxInverse::save(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::int64_t>(n_));
  write_vec(out, perm_);
  write_vec(out, inv_perm_);
  write_vec(out, col_offset_);
  write_vec(out, col_len_);
  write_vec(out, pool_rows_);
  write_vec(out, pool_vals_);
  if (!out) throw std::runtime_error("ApproxInverse::save: write failed");
}

ApproxInverse ApproxInverse::load(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("ApproxInverse::load: bad magic");
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kVersion)
    throw std::runtime_error("ApproxInverse::load: unsupported version");

  ApproxInverse z;
  std::int64_t n = 0;
  read_pod(in, n);
  if (n < 0) throw std::runtime_error("ApproxInverse::load: bad dimension");
  z.n_ = static_cast<index_t>(n);
  read_vec(in, z.perm_);
  read_vec(in, z.inv_perm_);
  read_vec(in, z.col_offset_);
  read_vec(in, z.col_len_);
  read_vec(in, z.pool_rows_);
  read_vec(in, z.pool_vals_);

  // Structural validation before trusting the data.
  const auto nn = static_cast<std::size_t>(z.n_);
  if (z.perm_.size() != nn || z.inv_perm_.size() != nn ||
      z.col_offset_.size() != nn || z.col_len_.size() != nn ||
      z.pool_rows_.size() != z.pool_vals_.size() ||
      !is_permutation(z.perm_) || !is_permutation(z.inv_perm_))
    throw std::runtime_error("ApproxInverse::load: inconsistent payload");
  for (index_t j = 0; j < z.n_; ++j) {
    const std::size_t off = z.col_offset_[static_cast<std::size_t>(j)];
    const auto len =
        static_cast<std::size_t>(z.col_len_[static_cast<std::size_t>(j)]);
    if (off + len > z.pool_rows_.size())
      throw std::runtime_error("ApproxInverse::load: column out of bounds");
  }
  return z;
}

void ApproxInverse::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  save(out);
}

ApproxInverse ApproxInverse::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load(in);
}

}  // namespace er
