// Parallel-reduction bench: reduce_network on generated grids at 1..T
// threads. Reports wall time (total plus the partition/stitch stage spans),
// the aggregate per-block CPU-seconds, speedup over the 1-thread run, and
// verifies the determinism guarantee — the reduced model must be
// bit-identical at every thread count. Emits BENCH_parallel.json for trend
// tracking.
//
//   bench_parallel_reduction [--threads N] [--json PATH]
//
// N is the *maximum* thread count swept (default: hardware concurrency).
#include <cstdio>
#include <string>
#include <vector>

#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace er;

int main(int argc, char** argv) {
  // Default --threads 0: sweep up to the hardware concurrency.
  const bench::BenchOptions bopts = bench::parse_bench_args(
      argc, argv, "BENCH_parallel.json", /*default_threads=*/0);
  const int max_threads = bopts.threads;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads && max_threads > 1)
    thread_counts.push_back(max_threads);

  const auto grids = er::bench::table2_suite();
  // Wall columns are disjoint stage spans; "CPU Σ(s)" sums the per-block
  // schur/er/sparsify timings across concurrently-running blocks, so it can
  // exceed T_red(s) in multi-thread runs (work, not elapsed time).
  TablePrinter table({"Case", "|V|(|E|)", "Blocks", "Threads", "T_red(s)",
                      "Part(s)", "Stitch(s)", "CPU Σ(s)", "Speedup",
                      "Identical"});
  bench::BenchJson json;
  bool all_identical = true;

  for (const auto& [name, pg] : grids) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[parallel] %s: n=%d resistors=%zu\n", name.c_str(),
                 pg.num_nodes, pg.resistors.size());

    ReductionOptions opts;
    // At least 32 blocks so the block-parallel dispatch has real width.
    opts.num_blocks = 32;
    opts.sparsify_quality = 1.0;

    double t1 = 0.0;
    ReducedModel reference;
    for (int threads : thread_counts) {
      opts.parallel.num_threads = threads;
      Timer t;
      ReducedModel m = reduce_network(net, pg.port_mask(), opts);
      const double seconds = t.seconds();
      if (threads == 1) {
        t1 = seconds;
        reference = std::move(m);
      }
      const bool identical =
          threads == 1 || models_identical(reference, m);
      all_identical = all_identical && identical;
      const double speedup = seconds > 0.0 ? t1 / seconds : 0.0;
      const ReductionStats& st =
          threads == 1 ? reference.stats : m.stats;
      const double cpu_sum = st.schur_cpu_seconds + st.er_cpu_seconds +
                             st.sparsify_cpu_seconds;

      table.add_row({name,
                     TablePrinter::fmt_size(pg.num_nodes) + "(" +
                         TablePrinter::fmt_size(static_cast<long long>(
                             pg.resistors.size())) +
                         ")",
                     TablePrinter::fmt_int(opts.num_blocks),
                     TablePrinter::fmt_int(threads),
                     TablePrinter::fmt(seconds, 3),
                     TablePrinter::fmt(st.partition_seconds, 3),
                     TablePrinter::fmt(st.stitch_seconds, 3),
                     TablePrinter::fmt(cpu_sum, 3),
                     TablePrinter::fmt(speedup, 2) + "x",
                     identical ? "yes" : "NO"});
      auto& row = json.add_row();
      row.set("bench", "parallel_reduction")
          .set("case", name)
          .set("nodes", static_cast<long long>(pg.num_nodes))
          .set("edges", pg.resistors.size())
          .set("blocks", static_cast<int>(opts.num_blocks))
          .set("threads", threads)
          .set("wall_seconds", seconds)
          .set("speedup", speedup)
          .set("identical", identical);
      bench::set_reduction_stats(row, st);
    }
  }

  std::printf("\nParallel block reduction — wall time vs. thread count\n"
              "(speedup relative to 1 thread; models must be identical)\n\n");
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: parallel reduction diverged from the serial model\n");
    return 1;
  }
  return json_status;
}
