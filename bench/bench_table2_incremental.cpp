// Table II (lower) reproduction: DC incremental analysis on ibmpg-like
// grids. 10% of the partition blocks are modified (resistances scaled); the
// reduction-based flows re-reduce only the dirty blocks (incremental T_red)
// and then solve the reduced model; "Original" re-solves the modified full
// grid directly.
#include <algorithm>
#include <cstdio>

#include "pg/analysis.hpp"
#include "pg/incremental.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace er;

struct RunResult {
  index_t nodes = 0;
  std::size_t edges = 0;
  double t_red = 0.0;  // incremental re-reduction time
  double t_inc = 0.0;  // reduced-model DC solve time
  double err_mv = 0.0;
  double rel_pct = 0.0;
};

RunResult run_incremental(const PowerGrid& pg, const ConductanceNetwork& net,
                          ErBackend backend, int threads,
                          const std::vector<real_t>& reference_drops,
                          double max_drop) {
  ReductionOptions ropts;
  ropts.backend = backend;
  ropts.sparsify_quality = 1.0;
  ropts.merge_threshold = 0.02;
  ropts.parallel.num_threads = threads;

  IncrementalReducer reducer(net, pg.port_mask(), ropts);
  const GridModification mod = random_modification(
      reducer.structure().num_blocks, 0.10, 1.30, 12345);
  const ConductanceNetwork modified =
      apply_modification(net, reducer.structure(), mod);
  const ReducedModel& m = reducer.update(modified, mod.dirty_blocks);

  const auto j = pg.load_vector(0.0);
  const DcSolution red = solve_dc(m.network, map_injections(m, j));
  SolutionError err;
  {
    DcSolution tmp = red;
    err = compare_dc(reference_drops, tmp, m, pg.port_nodes());
  }
  (void)max_drop;

  RunResult r;
  r.nodes = m.stats.reduced_nodes;
  r.edges = m.stats.reduced_edges;
  r.t_red = reducer.update_seconds();
  r.t_inc = red.factor_seconds + red.solve_seconds;
  r.err_mv = err.err_volts * 1e3;
  r.rel_pct = err.rel * 1e2;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const er::bench::BenchOptions bopts = er::bench::parse_bench_args(
      argc, argv, "BENCH_table2_incremental.json");
  const auto grids = er::bench::table2_suite();
  TablePrinter table({"Case", "Orig |V|(|E|)", "Orig Tinc", "Method",
                      "|V|(|E|)", "Tred", "Tinc", "Err(mV)", "Rel(%)"});
  er::bench::BenchJson json;

  double sum_speedup_total = 0.0;
  int count = 0;

  for (const auto& [name, pg] : grids) {
    std::fprintf(stderr, "[table2i] %s: n=%d resistors=%zu\n", name.c_str(),
                 pg.num_nodes, pg.resistors.size());
    const ConductanceNetwork net = pg.to_network();

    // Reference modification shared by all methods: same seed => the same
    // dirty blocks are derived inside run_incremental per backend, but the
    // *reference solution* must correspond to the same modified grid. Build
    // it through the same structure/seed path (exact backend's structure).
    ReductionOptions probe_opts;
    const BlockStructure probe =
        build_block_structure(net, pg.port_mask(), probe_opts);
    const GridModification mod =
        random_modification(probe.num_blocks, 0.10, 1.30, 12345);
    const ConductanceNetwork modified = apply_modification(net, probe, mod);

    Timer t;
    const DcSolution full = solve_dc(modified, pg.load_vector(0.0));
    const double t_full = t.seconds();
    double max_drop = 0.0;
    for (real_t v : full.drops) max_drop = std::max(max_drop, std::abs(v));

    const std::string osize =
        TablePrinter::fmt_size(pg.num_nodes) + "(" +
        TablePrinter::fmt_size(static_cast<long long>(pg.resistors.size())) +
        ")";

    struct Config {
      const char* label;
      ErBackend backend;
    };
    const Config configs[] = {
        {"Acc.ER", ErBackend::kExact},
        {"AppER[1]", ErBackend::kRandomProjection},
        {"Alg.3", ErBackend::kApproxChol},
    };

    double t_exact_total = 0.0;
    for (const Config& cfg : configs) {
      const RunResult r = run_incremental(pg, net, cfg.backend, bopts.threads,
                                          full.drops, max_drop);
      json.add_row()
          .set("bench", "table2_incremental")
          .set("case", name)
          .set("method", cfg.label)
          .set("threads", bopts.threads)
          .set("orig_nodes", static_cast<long long>(pg.num_nodes))
          .set("orig_solve_seconds", t_full)
          .set("reduced_nodes", static_cast<long long>(r.nodes))
          .set("reduced_edges", r.edges)
          .set("wall_seconds_reduce", r.t_red)
          .set("wall_seconds_solve", r.t_inc)
          .set("speedup_vs_full_solve",
               t_full / std::max(r.t_red + r.t_inc, 1e-9))
          .set("err_mv", r.err_mv)
          .set("rel_pct", r.rel_pct);
      table.add_row(
          {name, osize, TablePrinter::fmt(t_full, 3), cfg.label,
           TablePrinter::fmt_size(r.nodes) + "(" +
               TablePrinter::fmt_size(static_cast<long long>(r.edges)) + ")",
           TablePrinter::fmt(r.t_red, 3), TablePrinter::fmt(r.t_inc, 3),
           TablePrinter::fmt(r.err_mv, 3), TablePrinter::fmt(r.rel_pct, 2)});
      if (cfg.backend == ErBackend::kExact) {
        t_exact_total = r.t_red + r.t_inc;
      } else if (cfg.backend == ErBackend::kApproxChol) {
        sum_speedup_total += t_exact_total / std::max(r.t_red + r.t_inc, 1e-9);
        ++count;
      }
    }
  }

  std::printf("\nTable II (lower) — PG reduction for DC incremental "
              "analysis\n(10%% of blocks modified; only those re-reduced)\n\n");
  table.print();
  if (count > 0)
    std::printf("\nAvg total-time speedup, Alg.3 vs accurate ER: %.1fx\n",
                sum_speedup_total / count);
  table.write_csv("bench_table2_incremental.csv");
  std::printf("\nCSV written to bench_table2_incremental.csv\n");
  return er::bench::write_json_or_report(json, bopts);
}
