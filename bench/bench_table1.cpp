// Table I reproduction: effective resistances of all edges on the graph
// suite, comparing the random-projection baseline (WWW'15 [1]) against the
// paper's Alg. 3 (incomplete Cholesky + sparse approximate inverse).
//
// Columns mirror the paper: |V|(|E|), dpt (max filled-graph depth),
// baseline T/Ea/Em/nnz(Q)/(n log n), Alg. 3 T/Ea/Em/nnz(Z)/(n log n).
// Ea/Em are measured on 1000 random edges against exact values (direct
// solves), exactly as in the paper.
//
// Batch queries are chunked across --threads worker threads (default 1);
// results are identical at any thread count.
#include <cstdio>
#include <memory>

#include "effres/approx_chol.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "parallel/thread_pool.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace er;
using bench::SuiteCase;

struct MethodRow {
  double seconds = 0.0;
  double ea = 0.0;
  double em = 0.0;
  double nnz_ratio = 0.0;
  bool ran = false;
  index_t nonconverged_rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const er::bench::BenchOptions bopts =
      er::bench::parse_bench_args(argc, argv, "BENCH_table1.json");
  std::unique_ptr<ThreadPool> pool;
  if (bopts.threads > 1) pool = std::make_unique<ThreadPool>(bopts.threads);

  const auto suite = er::bench::table1_suite();
  TablePrinter table({"Case", "|V|(|E|)", "dpt", "RP T(s)", "RP Ea", "RP Em",
                      "RP nnz/nlogn", "Alg3 T(s)", "Alg3 Ea", "Alg3 Em",
                      "Alg3 nnz/nlogn", "Speedup"});
  er::bench::BenchJson json;

  double speedup_sum = 0.0;
  int speedup_count = 0;
  double ea_ratio_sum = 0.0;
  bool any_nonconverged = false;

  for (const SuiteCase& c : suite) {
    std::fprintf(stderr, "[table1] %s: n=%d m=%zu\n", c.name.c_str(),
                 c.graph.num_nodes(), c.graph.num_edges());
    const auto queries = all_edge_queries(c.graph);

    // --- Alg. 3 (droptol = 1e-3, epsilon = 1e-3: the paper's settings). ---
    Timer t;
    ApproxCholOptions ac;  // defaults are the paper's settings
    const ApproxCholEffRes alg3(c.graph, ac);
    (void)alg3.resistances(queries, pool.get());
    MethodRow alg3_row;
    alg3_row.seconds = t.seconds();
    alg3_row.nnz_ratio = alg3.stats().nnz_ratio(c.graph.num_nodes());
    alg3_row.ran = true;

    // --- Exact reference for error estimation (1000 random edges). ---
    const ExactEffRes exact(c.graph);
    {
      const ErrorReport rep = measure_edge_errors(c.graph, alg3, exact, 1000);
      alg3_row.ea = rep.average_relative;
      alg3_row.em = rep.max_relative;
    }

    // --- Random-projection baseline [1]. ---
    MethodRow rp_row;
    if (c.run_baseline) {
      t.reset();
      RandomProjectionOptions rp_opts;
      // k = 48 log2(n) projection rows: the paper's measured
      // nnz(Q)/(n log n) is 100-344, so this still *undercounts* the
      // baseline's cost/accuracy budget by 2-7x (kept lower to bound bench
      // runtime on one core; see EXPERIMENTS.md).
      rp_opts.auto_scale = 48.0;
      // Row solves chunk across the same pool as the batch queries.
      rp_opts.pool = pool.get();
      const RandomProjectionEffRes rp(c.graph, rp_opts);
      (void)rp.resistances(queries, pool.get());
      rp_row.seconds = t.seconds();
      rp_row.nnz_ratio = rp.stats().nnz_ratio(c.graph.num_nodes());
      rp_row.ran = true;
      rp_row.nonconverged_rows = rp.stats().nonconverged_rows;
      any_nonconverged = any_nonconverged || rp_row.nonconverged_rows > 0;
      if (rp_row.nonconverged_rows > 0)
        std::fprintf(stderr,
                     "WARNING: %s: %d of %d projection rows hit "
                     "max_iterations without converging; baseline accuracy "
                     "numbers are built on unconverged embeddings\n",
                     c.name.c_str(), static_cast<int>(rp_row.nonconverged_rows),
                     static_cast<int>(rp.stats().dimensions));
      const ErrorReport rep = measure_edge_errors(c.graph, rp, exact, 1000);
      rp_row.ea = rep.average_relative;
      rp_row.em = rep.max_relative;

      speedup_sum += rp_row.seconds / alg3_row.seconds;
      ++speedup_count;
      if (alg3_row.ea > 0.0) ea_ratio_sum += rp_row.ea / alg3_row.ea;
    }

    const std::string size = TablePrinter::fmt_size(c.graph.num_nodes()) +
                             "(" +
                             TablePrinter::fmt_size(
                                 static_cast<long long>(c.graph.num_edges())) +
                             ")";
    // A '*' on RP T(s) marks cases whose projection embeddings contain
    // unconverged PCG rows (see the WARNING lines and the footnote).
    table.add_row(
        {c.name, size, TablePrinter::fmt_int(alg3.stats().max_depth),
         rp_row.ran ? TablePrinter::fmt(rp_row.seconds, 2) +
                          (rp_row.nonconverged_rows > 0 ? "*" : "")
                    : "-",
         rp_row.ran ? TablePrinter::fmt_sci(rp_row.ea) : "-",
         rp_row.ran ? TablePrinter::fmt_sci(rp_row.em) : "-",
         rp_row.ran ? TablePrinter::fmt(rp_row.nnz_ratio, 1) : "-",
         TablePrinter::fmt(alg3_row.seconds, 2),
         TablePrinter::fmt_sci(alg3_row.ea), TablePrinter::fmt_sci(alg3_row.em),
         TablePrinter::fmt(alg3_row.nnz_ratio, 2),
         rp_row.ran ? TablePrinter::fmt(rp_row.seconds / alg3_row.seconds, 1) +
                          "x"
                    : "-"});
    json.add_row()
        .set("bench", "table1")
        .set("case", c.name)
        .set("family", c.family)
        .set("nodes", static_cast<long long>(c.graph.num_nodes()))
        .set("edges", c.graph.num_edges())
        .set("threads", bopts.threads)
        .set("alg3_wall_seconds", alg3_row.seconds)
        .set("alg3_ea", alg3_row.ea)
        .set("alg3_em", alg3_row.em)
        .set("alg3_nnz_ratio", alg3_row.nnz_ratio)
        .set("rp_ran", rp_row.ran)
        .set("rp_wall_seconds", rp_row.seconds)
        .set("rp_ea", rp_row.ea)
        .set("rp_em", rp_row.em)
        .set("rp_nonconverged_rows",
             static_cast<long long>(rp_row.nonconverged_rows))
        .set("speedup_alg3_over_rp",
             rp_row.ran ? rp_row.seconds / alg3_row.seconds : 0.0);
  }

  std::printf("\nTable I — computing effective resistances on large graphs\n");
  std::printf("(random projection [1] vs Alg. 3; errors vs exact on 1000 "
              "random edges)\n\n");
  table.print();
  if (any_nonconverged)
    std::printf("\n* projection embeddings contain rows whose PCG solve did "
                "not converge (see WARNING lines); treat the baseline's "
                "accuracy columns for those cases with suspicion\n");
  if (speedup_count > 0) {
    std::printf("\nAverage speedup of Alg. 3 over random projection: %.0fx\n",
                speedup_sum / speedup_count);
    std::printf("Average Ea(RP)/Ea(Alg3) error ratio: %.0fx\n",
                ea_ratio_sum / speedup_count);
  }
  table.write_csv("bench_table1.csv");
  std::printf("\nCSV written to bench_table1.csv\n");
  return er::bench::write_json_or_report(json, bopts);
}
