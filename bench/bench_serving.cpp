// Serving bench: queries/sec through the ModelStore vs. thread count
// (DESIGN.md §4). For each grid, the reduction runs once, a ModelSnapshot
// is built and published, and a mixed 10k-query batch (port responses +
// effective resistances, intra- and cross-block) is answered at 1/2/4/8
// threads on each route mode. Enforced invariants (exit 1 on violation):
//
//   * every multi-thread batch is bit-identical to the 1-thread batch of
//     the same mode (per-query slot writes, shared immutable snapshot), and
//   * the sharded domain-decomposition answers match the serial
//     single-model (monolithic-factor) answers to 1e-8 relative.
//
// Emits BENCH_serving.json (schema: bench/README.md).
//
//   bench_serving [--threads N] [--json PATH]
//
// N is the *maximum* thread count swept (default 8).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "suite.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace er;

namespace {

std::vector<PortQuery> make_batch(const ReducedModel& model,
                                  std::size_t count, std::uint64_t seed) {
  std::vector<index_t> kept;
  for (std::size_t v = 0; v < model.node_map.size(); ++v)
    if (model.node_map[v] >= 0) kept.push_back(static_cast<index_t>(v));
  std::vector<PortQuery> batch;
  batch.reserve(count);
  Rng rng(seed);
  const auto n = static_cast<index_t>(kept.size());
  for (std::size_t i = 0; i < count; ++i) {
    PortQuery query;
    query.kind = i % 2 == 0 ? QueryKind::kResistance : QueryKind::kResponse;
    query.p = kept[static_cast<std::size_t>(rng.uniform_int(n))];
    query.q = kept[static_cast<std::size_t>(rng.uniform_int(n))];
    batch.push_back(query);
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions bopts = bench::parse_bench_args(
      argc, argv, "BENCH_serving.json", /*default_threads=*/8);
  constexpr std::size_t kBatchSize = 10000;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= bopts.threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Case", "|V_red|", "Boundary", "Mode", "Threads",
                      "Batch(s)", "kQPS", "Speedup", "Identical"});
  bench::BenchJson json;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[serving] %s: n=%d resistors=%zu\n", name.c_str(),
                 pg.num_nodes, pg.resistors.size());

    ReductionOptions ropts;
    ropts.num_blocks = 32;
    ropts.sparsify_quality = 1.0;
    const ReductionArtifacts art =
        reduce_network_artifacts(net, pg.port_mask(), ropts);

    ModelStore store;
    store.publish(ModelSnapshot::build(art));
    const QueryFrontEnd frontend(&store);
    const SnapshotPtr snap = store.acquire();
    const auto batch = make_batch(art.model, kBatchSize, 2027);

    // Serial single-model reference: the whole batch through the monolithic
    // factor on one thread. Doubles as the (monolithic, 1 thread) row so
    // that configuration isn't computed twice.
    BatchStats reference_stats;
    Timer reference_timer;
    const auto reference = frontend.answer(batch, nullptr,
                                           RouteMode::kMonolithic,
                                           &reference_stats);
    const double reference_seconds = reference_timer.seconds();

    for (RouteMode mode : {RouteMode::kSharded, RouteMode::kMonolithic,
                           RouteMode::kLocalApprox}) {
      std::vector<real_t> serial_answers;
      double serial_seconds = 0.0;
      double max_rel_vs_reference = 0.0;
      for (int threads : thread_counts) {
        BatchStats stats;
        std::vector<real_t> answers;
        double seconds = 0.0;
        if (mode == RouteMode::kMonolithic && threads == 1) {
          answers = reference;
          stats = reference_stats;
          seconds = reference_seconds;
        } else {
          std::unique_ptr<ThreadPool> pool;
          if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
          Timer t;
          answers = frontend.answer(batch, pool.get(), mode, &stats);
          seconds = t.seconds();
        }

        bool identical = true;
        if (threads == 1) {
          serial_answers = answers;
          serial_seconds = seconds;
          // How far the mode strays from the serial single-model answers
          // (exact modes: solver-roundoff; local-approx: model error).
          for (std::size_t i = 0; i < answers.size(); ++i) {
            const double rel = std::abs(answers[i] - reference[i]) /
                               (1.0 + std::abs(reference[i]));
            max_rel_vs_reference = std::max(max_rel_vs_reference, rel);
          }
          if (mode != RouteMode::kLocalApprox &&
              max_rel_vs_reference > 1e-8) {
            std::fprintf(stderr,
                         "ERROR: %s/%s diverged from the serial single-model "
                         "reference (max rel %.3g)\n",
                         name.c_str(), to_string(mode), max_rel_vs_reference);
            all_ok = false;
          }
        } else {
          for (std::size_t i = 0; i < answers.size(); ++i)
            identical = identical && answers[i] == serial_answers[i];
          all_ok = all_ok && identical;
        }

        const double qps =
            seconds > 0.0 ? static_cast<double>(batch.size()) / seconds : 0.0;
        const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
        table.add_row({name, TablePrinter::fmt_size(snap->model().stats.reduced_nodes),
                       TablePrinter::fmt_size(snap->num_boundary_nodes()),
                       to_string(mode), TablePrinter::fmt_int(threads),
                       TablePrinter::fmt(seconds, 3),
                       TablePrinter::fmt(qps / 1000.0, 1),
                       TablePrinter::fmt(speedup, 2) + "x",
                       identical ? "yes" : "NO"});
        auto& row = json.add_row();
        row.set("bench", "serving")
            .set("case", name)
            .set("mode", to_string(mode))
            .set("threads", threads)
            .set("queries", batch.size())
            .set("reduced_nodes",
                 static_cast<long long>(snap->model().stats.reduced_nodes))
            .set("boundary_nodes",
                 static_cast<long long>(snap->num_boundary_nodes()))
            .set("blocks", static_cast<int>(snap->num_blocks()))
            .set("snapshot_build_seconds", snap->build_seconds())
            .set("wall_seconds", seconds)
            .set("queries_per_second", qps)
            .set("speedup", speedup)
            .set("identical", identical)
            .set("cross_block_queries", stats.cross_block)
            .set("engine_answered", stats.engine_answered)
            .set("max_rel_vs_monolithic", max_rel_vs_reference);
      }
    }
  }

  std::printf("\nServing throughput — mixed %zu-query batches through the "
              "ModelStore\n(speedup relative to the same mode at 1 thread; "
              "batches must be bit-identical)\n\n",
              kBatchSize);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: serving answers diverged\n");
    return 1;
  }
  return json_status;
}
