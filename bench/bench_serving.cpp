// Serving bench: queries/sec through the ModelStore vs. thread count
// (DESIGN.md §4). For each grid, the reduction runs once, a ModelSnapshot
// is built and published, and a mixed 10k-query batch (port responses +
// effective resistances, intra- and cross-block) is answered at 1/2/4/8
// threads on each route mode. Enforced invariants (exit 1 on violation):
//
//   * every multi-thread batch is bit-identical to the 1-thread batch of
//     the same mode (per-query slot writes, shared immutable snapshot), and
//   * the sharded domain-decomposition answers match the serial
//     single-model (monolithic-factor) answers to 1e-8 relative.
//
// --churn switches to the mixed update+query mode (DESIGN.md §4.1): an
// AsyncUpdater streams modification batches through the IncrementalReducer
// (dirty-only snapshot rebuilds) while query batches keep hitting the
// store, measuring publish latency, staleness (modifications behind), and
// QPS under churn. Enforced there (exit 1 on violation): the final
// asynchronously-published snapshot answers bit-identically to a
// synchronous twin reducer that applied the same modification stream
// sequentially and built its snapshot from scratch.
//
// --loopback switches to the network serving mode (DESIGN.md §8): the
// net/ Server + ServingStack run in-process and real LoopbackClient TCP
// connections drive them at 1/2/4/8 concurrent clients, measuring
// end-to-end request QPS and client-observed latency percentiles, then
// churning the mod feed while queries continue. Enforced (exit 1 on
// violation): every loopback answer is bit-identical to the direct
// QueryFrontEnd call on the same snapshot, and the er_net_* registry
// counters agree with the client-side request/rejection tallies.
//
// --zipf S (with --churn) switches to the result-cache scenario
// (DESIGN.md §4.2): Zipf(S)-skewed resistance queries over a fixed pair
// pool stream through a store-attached ResultCache while the updater
// churns, reporting cache hit rate and QPS with the cache vs. the same
// batches recomputed without it. Enforced (exit 1 on violation): every
// cached batch is bit-identical to its uncached twin on the same pinned
// snapshot, the er_cache_* registry counters agree with the BatchStats
// sums, and for S >= 1 the hit rate clears 50%.
//
// --policy-mix switches to the per-query QueryPolicy sweep (DESIGN.md
// §4.3): one batch carrying a deterministic mix of accuracy tiers,
// backend preferences, hedged queries, and deadlines is answered at
// 1/2/4/8 threads, reporting per-tier latency percentiles, hedge win
// fractions, and deadline misses. Enforced (exit 1 on violation): every
// multi-thread batch is bit-identical to the 1-thread batch, every hedged
// answer matches a serial two-backend twin selected with the pure rule in
// serve/query_policy.hpp, deadline-carrying queries miss exactly when the
// (fixed, injected) queue wait exceeds their budget, and the er_policy_*
// counters agree with the returned BatchStats.
//
// Emits BENCH_serving.json (schema: bench/README.md). All modes also
// report per-query latency percentiles (and, under churn, publish-latency
// percentiles) extracted from the observability registry (DESIGN.md §6),
// cross-checked against the legacy Stats accessors, and can dump the whole
// registry as Prometheus text exposition via --metrics.
//
//   bench_serving [--threads N] [--json PATH] [--metrics PATH] [--churn]
//                 [--zipf S] [--loopback] [--policy-mix]
//
// N is the *maximum* thread count swept (default 8).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/stack.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "pg/incremental.hpp"
#include "serve/async_updater.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/result_cache.hpp"
#include "suite.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace er;

namespace {

/// Fold the global registry (reducer + default-registry components) into
/// the per-iteration dump and write it as Prometheus text exposition.
/// Returns the exit-code contribution (0 ok, 1 fail); no-op on empty path.
int write_metrics_dump(obs::MetricsSnapshot dump,
                       const bench::BenchOptions& bopts) {
  if (bopts.metrics_path.empty()) return 0;
  dump.merge(obs::MetricsRegistry::global().snapshot());
  std::ofstream out(bopts.metrics_path);
  if (out) out << obs::to_prometheus(dump);
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", bopts.metrics_path.c_str());
    return 1;
  }
  std::printf("Metrics written to %s\n", bopts.metrics_path.c_str());
  return 0;
}

/// Set `query_latency_p50/p95/p99_us` on a JSON row from the iteration's
/// `er_query_latency_seconds{mode=...}` histogram (zeros when absent).
void set_query_latency_fields(bench::BenchJson::Row& row,
                              const obs::MetricsSnapshot& snap,
                              RouteMode mode) {
  const obs::MetricSnapshot* h =
      snap.find("er_query_latency_seconds", {{"mode", to_string(mode)}});
  const auto us = [h](double q) {
    return h ? h->histogram.quantile(q) * 1e6 : 0.0;
  };
  row.set("query_latency_p50_us", us(0.50))
      .set("query_latency_p95_us", us(0.95))
      .set("query_latency_p99_us", us(0.99));
}

std::vector<PortQuery> make_batch(const ReducedModel& model,
                                  std::size_t count, std::uint64_t seed) {
  std::vector<index_t> kept;
  for (std::size_t v = 0; v < model.node_map.size(); ++v)
    if (model.node_map[v] >= 0) kept.push_back(static_cast<index_t>(v));
  std::vector<PortQuery> batch;
  batch.reserve(count);
  Rng rng(seed);
  const auto n = static_cast<index_t>(kept.size());
  for (std::size_t i = 0; i < count; ++i) {
    PortQuery query;
    query.kind = i % 2 == 0 ? QueryKind::kResistance : QueryKind::kResponse;
    query.p = kept[static_cast<std::size_t>(rng.uniform_int(n))];
    query.q = kept[static_cast<std::size_t>(rng.uniform_int(n))];
    batch.push_back(query);
  }
  return batch;
}

/// Mixed update+query mode: per (case, threads), stream kChurnMods
/// modifications through an AsyncUpdater-driven reducer while answering
/// query batches, then validate the final published snapshot bitwise
/// against a synchronous sequential twin.
int run_churn(const bench::BenchOptions& bopts) {
  constexpr int kChurnMods = 10;
  constexpr std::size_t kChurnBatch = 2000;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= bopts.threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Case", "Threads", "Mods", "Batches", "PubLat(ms)",
                      "MaxStale", "Blocked", "CopiedKB", "kQPS", "Reused",
                      "Identical"});
  bench::BenchJson json;
  obs::MetricsSnapshot metrics_dump;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[serving --churn] %s: n=%d resistors=%zu\n",
                 name.c_str(), pg.num_nodes, pg.resistors.size());

    for (int threads : thread_counts) {
      ReductionOptions ropts;
      ropts.num_blocks = 32;
      ropts.sparsify_quality = 1.0;
      ropts.parallel.num_threads = threads;

      // Per-iteration registry: serving-side series (store / front-end /
      // query pool / updater) start from zero for this (case, threads)
      // pair, so histogram counts can be cross-checked against the legacy
      // Stats accessors exactly. The reducer records into the global
      // registry (folded into the dump at the end).
      obs::MetricsRegistry reg;
      ModelStore store(&reg);
      IncrementalReducer reducer(net, pg.port_mask(), ropts);
      ServingOptions sopts;
      // Production churn configuration: no whole-system factor per publish.
      sopts.build_monolithic_factor = false;
      reducer.attach_store(&store, sopts);
      const double full_build_seconds = store.acquire()->build_seconds();
      const QueryFrontEnd frontend(&store, &reg);
      const auto batch = make_batch(reducer.model(), kChurnBatch, 2029);
      // The worker mutates reducer.structure() during updates; capture the
      // routing info the submitter needs up front.
      const BlockStructure structure = reducer.structure();

      // Pre-build the deterministic modification stream (cumulative
      // states, the AsyncUpdater submission contract).
      std::vector<ConductanceNetwork> nets;
      std::vector<GridModification> mods;
      {
        ConductanceNetwork current = net;
        for (int u = 1; u <= kChurnMods; ++u) {
          const GridModification mod = random_modification(
              structure.num_blocks, 0.1, 1.2,
              static_cast<std::uint64_t>(4000 + u));
          current = apply_modification(current, structure, mod);
          nets.push_back(current);
          mods.push_back(mod);
        }
      }

      std::unique_ptr<ThreadPool> qpool;
      if (threads > 1) qpool = std::make_unique<ThreadPool>(threads, &reg);
      // Production back-pressure configuration: the edit stream may run at
      // most kStalenessBound modifications ahead of the store; a submit at
      // the bound blocks (fail_fast=false) until the worker catches up.
      constexpr std::uint64_t kStalenessBound = 6;
      AsyncUpdater::Options uopts;
      uopts.max_staleness_mods = kStalenessBound;
      uopts.registry = &reg;
      AsyncUpdater updater(
          [&reducer](const ConductanceNetwork& m,
                     const std::vector<index_t>& dirty) {
            reducer.update(m, dirty);
            return reducer.revision();
          },
          uopts);

      // Churn phase: submit one modification, answer one batch, repeat —
      // queries overlap the background update+publish cycles.
      std::size_t queries_answered = 0;
      std::uint64_t stale_sum = 0, stale_max = 0;
      std::uint64_t vstale_sum = 0, vstale_max = 0;
      std::size_t stale_samples = 0;
      Timer churn_timer;
      double query_seconds = 0.0;
      for (int u = 0; u < kChurnMods; ++u) {
        updater.submit(nets[static_cast<std::size_t>(u)],
                       mods[static_cast<std::size_t>(u)].dirty_blocks);
        BatchStats bstats;
        Timer bt;
        (void)frontend.answer(batch, qpool.get(), RouteMode::kSharded,
                              &bstats);
        query_seconds += bt.seconds();
        queries_answered += batch.size();
        const std::uint64_t submitted = static_cast<std::uint64_t>(u) + 1;
        const std::uint64_t reflected =
            updater.mods_reflected(bstats.snapshot_version);
        const std::uint64_t stale =
            submitted > reflected ? submitted - reflected : 0;
        stale_sum += stale;
        stale_max = std::max(stale_max, stale);
        // Model versions the pinned snapshot trails the newest publish by
        // (sampled at batch end, so publishes racing the batch count).
        // current_version() is optional since the 0-ambiguity fix; the
        // attach-time publish guarantees a value here.
        const std::uint64_t latest =
            store.current_version().value_or(bstats.snapshot_version);
        const std::uint64_t vstale = latest > bstats.snapshot_version
                                         ? latest - bstats.snapshot_version
                                         : 0;
        vstale_sum += vstale;
        vstale_max = std::max(vstale_max, vstale);
        ++stale_samples;
      }
      updater.flush();
      const double churn_seconds = churn_timer.seconds();
      const AsyncUpdater::Stats ustats = updater.stats();
      const SnapshotPtr final_snap = store.acquire();

      // Registry cross-checks against the legacy accessors: the metrics
      // layer must tell the same story as Stats/BatchStats, or one of the
      // two bookkeeping paths is lying.
      const obs::MetricsSnapshot reg_snap = reg.snapshot();
      const obs::MetricSnapshot* query_hist = reg_snap.find(
          "er_query_latency_seconds", {{"mode", "sharded"}});
      const obs::MetricSnapshot* publish_hist =
          reg_snap.find("er_updater_publish_latency_seconds");
      const obs::MetricSnapshot* stale_gauge =
          reg_snap.find("er_updater_staleness_mods");
      const obs::MetricSnapshot* stale_high =
          reg_snap.find("er_updater_staleness_mods_high_water");
      if (!query_hist || query_hist->histogram.count != queries_answered) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d er_query_latency_seconds count "
                     "%llu != %zu queries answered\n",
                     name.c_str(), threads,
                     query_hist ? static_cast<unsigned long long>(
                                      query_hist->histogram.count)
                                : 0ULL,
                     queries_answered);
        all_ok = false;
      }
      if (!publish_hist ||
          publish_hist->histogram.count != ustats.batches) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d er_updater_publish_latency_"
                     "seconds count != Stats::batches (%llu)\n",
                     name.c_str(), threads,
                     static_cast<unsigned long long>(ustats.batches));
        all_ok = false;
      }
      if (!stale_gauge || stale_gauge->gauge != 0) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d er_updater_staleness_mods != 0 "
                     "after flush\n",
                     name.c_str(), threads);
        all_ok = false;
      }
      if (!stale_high ||
          static_cast<std::uint64_t>(stale_high->gauge) !=
              ustats.max_observed_staleness_mods) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d staleness high-water gauge != "
                     "Stats::max_observed_staleness_mods\n",
                     name.c_str(), threads);
        all_ok = false;
      }
      const auto publish_ms = [publish_hist](double q) {
        return publish_hist ? publish_hist->histogram.quantile(q) * 1e3
                            : 0.0;
      };

      // Validation: a synchronous twin applies the same stream one update
      // at a time; the async final model must match it bit-for-bit, and
      // the chain of dirty-only rebuilds must answer bit-identically to a
      // from-scratch snapshot of the twin's model.
      IncrementalReducer twin(net, pg.port_mask(), ropts);
      for (int u = 0; u < kChurnMods; ++u)
        twin.update(nets[static_cast<std::size_t>(u)],
                    mods[static_cast<std::size_t>(u)].dirty_blocks);
      bool identical = models_identical(reducer.model(), twin.model());
      const auto twin_snap =
          ModelSnapshot::build(twin.blocks(), twin.model(), sopts);
      const auto want = QueryFrontEnd::answer_on(*twin_snap, batch);
      const auto got = QueryFrontEnd::answer_on(*final_snap, batch);
      for (std::size_t i = 0; i < want.size(); ++i)
        identical = identical && want[i] == got[i];
      if (!identical) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d async churn diverged from the "
                     "synchronous sequential path\n",
                     name.c_str(), threads);
        all_ok = false;
      }
      // The default serving configuration publishes zero-copy: the
      // snapshot aliases the reducer's frozen model, so no publish may
      // ever deep-copy model bytes.
      if (reducer.publish_model_bytes_copied() != 0) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d publish copied %zu model bytes "
                     "on the zero-copy path\n",
                     name.c_str(), threads,
                     reducer.publish_model_bytes_copied());
        all_ok = false;
      }

      const double qps =
          query_seconds > 0.0
              ? static_cast<double>(queries_answered) / query_seconds
              : 0.0;
      const double publish_latency_mean =
          ustats.batches > 0
              ? ustats.total_publish_latency_seconds /
                    static_cast<double>(ustats.batches)
              : 0.0;
      const double stale_mean =
          stale_samples > 0
              ? static_cast<double>(stale_sum) /
                    static_cast<double>(stale_samples)
              : 0.0;
      const double vstale_mean =
          stale_samples > 0
              ? static_cast<double>(vstale_sum) /
                    static_cast<double>(stale_samples)
              : 0.0;
      const double reused_fraction =
          final_snap->num_blocks() > 0
              ? static_cast<double>(final_snap->reused_blocks()) /
                    static_cast<double>(final_snap->num_blocks())
              : 0.0;

      table.add_row({name, TablePrinter::fmt_int(threads),
                     TablePrinter::fmt_int(kChurnMods),
                     TablePrinter::fmt_int(static_cast<int>(ustats.batches)),
                     TablePrinter::fmt(publish_latency_mean * 1000.0, 2),
                     TablePrinter::fmt_int(static_cast<int>(stale_max)),
                     TablePrinter::fmt_int(
                         static_cast<int>(ustats.blocked_submits)),
                     TablePrinter::fmt(
                         static_cast<double>(
                             reducer.publish_model_bytes_copied()) /
                             1024.0,
                         1),
                     TablePrinter::fmt(qps / 1000.0, 1),
                     TablePrinter::fmt(reused_fraction, 2),
                     identical ? "yes" : "NO"});
      auto& row = json.add_row();
      row.set("bench", "serving")
          .set("case", name)
          .set("mode", "churn")
          .set("threads", threads)
          .set("queries", queries_answered)
          .set("reduced_nodes",
               static_cast<long long>(
                   final_snap->model().stats.reduced_nodes))
          .set("boundary_nodes",
               static_cast<long long>(final_snap->num_boundary_nodes()))
          .set("blocks", static_cast<int>(final_snap->num_blocks()))
          .set("mods_submitted", ustats.submitted)
          .set("update_batches", ustats.batches)
          .set("mods_coalesced", ustats.coalesced)
          .set("publish_latency_mean_seconds", publish_latency_mean)
          .set("publish_latency_max_seconds",
               ustats.max_publish_latency_seconds)
          .set("publish_latency_p50_ms", publish_ms(0.50))
          .set("publish_latency_p95_ms", publish_ms(0.95))
          .set("publish_latency_p99_ms", publish_ms(0.99))
          .set("staleness_mean_mods", stale_mean)
          .set("staleness_max_mods", stale_max)
          .set("staleness_mean_versions", vstale_mean)
          .set("staleness_max_versions", vstale_max)
          .set("queries_per_second", qps)
          .set("churn_wall_seconds", churn_seconds)
          .set("reused_block_fraction", reused_fraction)
          .set("incremental_publish_seconds", reducer.publish_seconds())
          .set("full_snapshot_build_seconds", full_build_seconds)
          // Zero-copy publish accounting: model bytes the last publish
          // deep-copied (0 on the shared-model path) vs. the bytes of
          // serving state it materialized (scales with the dirty set) vs.
          // the whole model's footprint (what the pre-zero-copy publishes
          // used to copy every time).
          .set("publish_model_bytes_copied",
               static_cast<long long>(reducer.publish_model_bytes_copied()))
          .set("publish_bytes_materialized",
               static_cast<long long>(reducer.publish_bytes_materialized()))
          .set("model_footprint_bytes",
               static_cast<long long>(
                   model_footprint_bytes(final_snap->model())))
          // Back-pressure figures (bound = staleness_bound_mods).
          .set("staleness_bound_mods", kStalenessBound)
          .set("blocked_submits", ustats.blocked_submits)
          .set("rejected_submits", ustats.rejected)
          .set("max_observed_staleness_mods",
               ustats.max_observed_staleness_mods)
          .set("identical", identical);
      set_query_latency_fields(row, reg_snap, RouteMode::kSharded);
      metrics_dump.merge(reg_snap);
    }
  }

  std::printf("\nServing under churn — %d async modifications per case while "
              "%zu-query batches race\n(final model must be bit-identical to "
              "the synchronous sequential path)\n\n",
              kChurnMods, kChurnBatch);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  const int metrics_status = write_metrics_dump(metrics_dump, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: churn serving diverged\n");
    return 1;
  }
  return json_status != 0 ? json_status : metrics_status;
}

/// Result-cache scenario: per (case, threads), stream Zipf(S)-skewed
/// resistance queries over a fixed pair pool through a store-attached
/// ResultCache while the AsyncUpdater churns modifications underneath.
/// Every cached batch is validated bitwise against an uncached twin on
/// the same pinned snapshot, and the registry's er_cache_* counters are
/// cross-checked against the accumulated BatchStats.
int run_zipf(const bench::BenchOptions& bopts) {
  constexpr int kChurnMods = 10;
  constexpr int kZipfBatchesPerMod = 4;
  constexpr std::size_t kZipfBatch = 500;
  // Pool smaller than a mod-cycle's draw count (4 * 500), so a skewed
  // working set revisits keys both within a version and across the clean
  // blocks carried to the next one.
  constexpr std::size_t kPoolPairs = 384;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= bopts.threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Case", "Threads", "S", "Batches", "HitRate",
                      "kQPS(cache)", "kQPS(raw)", "Entries", "Evict",
                      "Inval", "Identical"});
  bench::BenchJson json;
  obs::MetricsSnapshot metrics_dump;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[serving --zipf %.2f] %s: n=%d resistors=%zu\n",
                 bopts.zipf, name.c_str(), pg.num_nodes, pg.resistors.size());

    for (int threads : thread_counts) {
      ReductionOptions ropts;
      ropts.num_blocks = 32;
      ropts.sparsify_quality = 1.0;
      ropts.parallel.num_threads = threads;

      obs::MetricsRegistry reg;
      // The uncached twin batches record into a registry of their own, so
      // `reg`'s query-latency / cache series describe the cached path only.
      obs::MetricsRegistry uncached_reg;
      ModelStore store(&reg);
      IncrementalReducer reducer(net, pg.port_mask(), ropts);
      ServingOptions sopts;
      sopts.build_monolithic_factor = false;
      reducer.attach_store(&store, sopts);
      // Attach after the initial publish: attach_cache registers the
      // already-current snapshot, subsequent publishes carry/invalidate.
      const auto cache =
          std::make_shared<ResultCache>(sopts.cache, &reg);
      store.attach_cache(cache);
      const BlockStructure structure = reducer.structure();

      // Fixed pair pool over kept (non-eliminated) nodes; the Zipf sampler
      // ranks it so low ranks dominate the stream.
      std::vector<PortQuery> pool_pairs;
      {
        const ReducedModel& model = reducer.model();
        std::vector<index_t> kept;
        for (std::size_t v = 0; v < model.node_map.size(); ++v)
          if (model.node_map[v] >= 0) kept.push_back(static_cast<index_t>(v));
        Rng rng(2031);
        const auto n = static_cast<index_t>(kept.size());
        pool_pairs.reserve(kPoolPairs);
        for (std::size_t i = 0; i < kPoolPairs; ++i) {
          PortQuery query;
          query.kind = QueryKind::kResistance;
          query.p = kept[static_cast<std::size_t>(rng.uniform_int(n))];
          query.q = kept[static_cast<std::size_t>(rng.uniform_int(n))];
          pool_pairs.push_back(query);
        }
      }
      const bench::ZipfSampler sampler(pool_pairs.size(), bopts.zipf);

      // Deterministic modification stream, identical contract to --churn.
      std::vector<ConductanceNetwork> nets;
      std::vector<GridModification> mods;
      {
        ConductanceNetwork current = net;
        for (int u = 1; u <= kChurnMods; ++u) {
          const GridModification mod = random_modification(
              structure.num_blocks, 0.1, 1.2,
              static_cast<std::uint64_t>(4000 + u));
          current = apply_modification(current, structure, mod);
          nets.push_back(current);
          mods.push_back(mod);
        }
      }

      std::unique_ptr<ThreadPool> qpool;
      if (threads > 1) qpool = std::make_unique<ThreadPool>(threads, &reg);
      AsyncUpdater::Options uopts;
      uopts.max_staleness_mods = 6;
      uopts.registry = &reg;
      AsyncUpdater updater(
          [&reducer](const ConductanceNetwork& m,
                     const std::vector<index_t>& dirty) {
            reducer.update(m, dirty);
            return reducer.revision();
          },
          uopts);

      // Churn + query phase. Each batch pins one snapshot and is answered
      // twice — through the cache and from scratch — so the bitwise check
      // cannot be confused by a publish landing between the two runs.
      std::size_t queries_answered = 0;
      std::size_t hits = 0, misses = 0;
      double cached_seconds = 0.0, uncached_seconds = 0.0;
      bool identical = true;
      Rng draw_rng(2033);
      for (int u = 0; u < kChurnMods; ++u) {
        updater.submit(nets[static_cast<std::size_t>(u)],
                       mods[static_cast<std::size_t>(u)].dirty_blocks);
        for (int b = 0; b < kZipfBatchesPerMod; ++b) {
          std::vector<PortQuery> batch;
          batch.reserve(kZipfBatch);
          for (std::size_t i = 0; i < kZipfBatch; ++i)
            batch.push_back(pool_pairs[sampler.sample(draw_rng.uniform())]);
          const SnapshotPtr snap = store.acquire();
          BatchStats cached_stats;
          Timer ct;
          AnswerContext cached_ctx;
          cached_ctx.pool = qpool.get();
          cached_ctx.mode = RouteMode::kLocalApprox;
          cached_ctx.stats = &cached_stats;
          cached_ctx.registry = &reg;
          cached_ctx.cache = cache.get();
          const auto cached_answers =
              QueryFrontEnd::answer_on(*snap, batch, cached_ctx);
          cached_seconds += ct.seconds();
          BatchStats uncached_stats;
          Timer ut;
          AnswerContext uncached_ctx;
          uncached_ctx.pool = qpool.get();
          uncached_ctx.mode = RouteMode::kLocalApprox;
          uncached_ctx.stats = &uncached_stats;
          uncached_ctx.registry = &uncached_reg;
          const auto uncached_answers =
              QueryFrontEnd::answer_on(*snap, batch, uncached_ctx);
          uncached_seconds += ut.seconds();
          for (std::size_t i = 0; i < batch.size(); ++i)
            identical =
                identical && cached_answers[i] == uncached_answers[i];
          hits += cached_stats.cache_hits;
          misses += cached_stats.cache_misses;
          queries_answered += batch.size();
        }
      }
      updater.flush();
      const SnapshotPtr final_snap = store.acquire();
      if (!identical) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d cached batch diverged from its "
                     "uncached twin\n",
                     name.c_str(), threads);
        all_ok = false;
      }

      // Registry cross-checks: the cache's own counters must tell the same
      // story as the per-batch stats the front-end returned.
      const obs::MetricsSnapshot reg_snap = reg.snapshot();
      const obs::MetricSnapshot* hits_counter =
          reg_snap.find("er_cache_hits_total");
      const obs::MetricSnapshot* misses_counter =
          reg_snap.find("er_cache_misses_total");
      if (!hits_counter ||
          static_cast<std::size_t>(hits_counter->counter) != hits ||
          !misses_counter ||
          static_cast<std::size_t>(misses_counter->counter) != misses) {
        std::fprintf(
            stderr,
            "ERROR: %s threads=%d er_cache_{hits,misses}_total "
            "disagree with BatchStats (counters %llu/%llu, stats "
            "%zu/%zu)\n",
            name.c_str(), threads,
            static_cast<unsigned long long>(
                hits_counter ? hits_counter->counter : 0),
            static_cast<unsigned long long>(
                misses_counter ? misses_counter->counter : 0),
            hits, misses);
        all_ok = false;
      }

      const double hit_rate =
          hits + misses > 0
              ? static_cast<double>(hits) /
                    static_cast<double>(hits + misses)
              : 0.0;
      // The acceptance bar: a skewed stream (S >= 1) over a pool smaller
      // than the per-version draw count must clear a 50% hit rate even
      // with 10% of blocks going dirty every publish.
      if (bopts.zipf >= 1.0 && hit_rate < 0.5) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d hit rate %.3f below the 0.5 "
                     "floor at zipf %.2f\n",
                     name.c_str(), threads, hit_rate, bopts.zipf);
        all_ok = false;
      }

      const double qps =
          cached_seconds > 0.0
              ? static_cast<double>(queries_answered) / cached_seconds
              : 0.0;
      const double qps_uncached =
          uncached_seconds > 0.0
              ? static_cast<double>(queries_answered) / uncached_seconds
              : 0.0;
      table.add_row(
          {name, TablePrinter::fmt_int(threads),
           TablePrinter::fmt(bopts.zipf, 2),
           TablePrinter::fmt_int(kChurnMods * kZipfBatchesPerMod),
           TablePrinter::fmt(hit_rate, 3),
           TablePrinter::fmt(qps / 1000.0, 1),
           TablePrinter::fmt(qps_uncached / 1000.0, 1),
           TablePrinter::fmt_size(static_cast<long long>(cache->entries())),
           TablePrinter::fmt_size(static_cast<long long>(cache->evictions())),
           TablePrinter::fmt_size(
               static_cast<long long>(cache->invalidations())),
           identical ? "yes" : "NO"});
      auto& row = json.add_row();
      row.set("bench", "serving")
          .set("case", name)
          .set("mode", "zipf")
          .set("threads", threads)
          .set("queries", queries_answered)
          .set("reduced_nodes",
               static_cast<long long>(
                   final_snap->model().stats.reduced_nodes))
          .set("boundary_nodes",
               static_cast<long long>(final_snap->num_boundary_nodes()))
          .set("blocks", static_cast<int>(final_snap->num_blocks()))
          .set("zipf_s", bopts.zipf)
          .set("pool_pairs", kPoolPairs)
          .set("mods_submitted", static_cast<std::size_t>(kChurnMods))
          .set("cache_hit_rate", hit_rate)
          .set("cache_hits", hits)
          .set("cache_misses", misses)
          .set("cache_entries", cache->entries())
          .set("cache_evictions",
               static_cast<long long>(cache->evictions()))
          .set("cache_invalidations",
               static_cast<long long>(cache->invalidations()))
          .set("queries_per_second", qps)
          .set("queries_per_second_uncached", qps_uncached)
          .set("identical", identical);
      set_query_latency_fields(row, reg_snap, RouteMode::kLocalApprox);
      metrics_dump.merge(reg_snap);
    }
  }

  std::printf("\nServing through the result cache — Zipf(%.2f) over %zu "
              "pairs, %d mods churning\n(cached batches must be "
              "bit-identical to their uncached twins)\n\n",
              bopts.zipf, kPoolPairs, kChurnMods);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  const int metrics_status = write_metrics_dump(metrics_dump, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: zipf cache scenario failed\n");
    return 1;
  }
  return json_status != 0 ? json_status : metrics_status;
}

/// Nearest-rank percentile of a *sorted* sample vector, in microseconds.
double percentile_us(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
  return sorted_seconds[std::min(idx, sorted_seconds.size() - 1)] * 1e6;
}

/// Network serving mode (--loopback, DESIGN.md §8): per (case, clients),
/// stand up the full daemon core in-process (ServingStack + Server on an
/// ephemeral loopback port) and drive it with `clients` concurrent
/// LoopbackClient connections. Phase A measures static end-to-end QPS and
/// client-observed request latency, validating every answer bitwise
/// against the direct QueryFrontEnd call; phase B streams modifications
/// through the wire-level mod feed under concurrent queries (kRetryLater
/// is an expected, counted outcome), then validates the post-churn answers
/// bitwise again and cross-checks the er_net_* counters against the
/// client-side tallies.
int run_loopback(const bench::BenchOptions& bopts) {
  constexpr int kMods = 6;
  constexpr std::size_t kBatchPerRequest = 64;
  constexpr std::size_t kRequestsPerClient = 40;

  std::vector<int> client_counts{1};
  for (int c = 2; c <= bopts.threads; c *= 2) client_counts.push_back(c);

  TablePrinter table({"Case", "Clients", "Requests", "kQPS", "p50(us)",
                      "p95(us)", "p99(us)", "Retry", "Identical"});
  bench::BenchJson json;
  obs::MetricsSnapshot metrics_dump;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork grid_net = pg.to_network();
    const std::vector<char> is_port = pg.port_mask();
    std::fprintf(stderr, "[serving --loopback] %s: n=%d resistors=%zu\n",
                 name.c_str(), pg.num_nodes, pg.resistors.size());

    for (int clients : client_counts) {
      obs::MetricsRegistry reg;
      net::StackOptions stack_opts;
      stack_opts.reduction.num_blocks = 32;
      stack_opts.reduction.sparsify_quality = 1.0;
      // Sharded-only traffic: skip the dense global factor per publish.
      stack_opts.serving.build_monolithic_factor = false;
      net::ServingStack stack(grid_net, is_port, stack_opts, &reg);

      net::ServerOptions server_opts;
      server_opts.enable_http = false;
      server_opts.dispatcher_threads = 2;
      server_opts.query_threads = clients > 1 ? 2 : 1;
      server_opts.admission_capacity = 256;
      server_opts.registry = &reg;
      net::Server server(&stack.store(), server_opts, stack.mod_fn());
      if (!server.start()) {
        std::fprintf(stderr, "ERROR: %s clients=%d could not bind the "
                     "loopback listener\n", name.c_str(), clients);
        return 1;
      }

      const SnapshotPtr snap0 = stack.store().acquire();
      const auto batch =
          make_batch(snap0->model(), kBatchPerRequest, 2027 + clients);
      const std::vector<real_t> direct = stack.frontend().answer(
          batch, nullptr, RouteMode::kSharded, nullptr);

      const auto matches = [&](const std::vector<real_t>& answers,
                               const std::vector<real_t>& want) {
        return answers.size() == want.size() &&
               std::memcmp(answers.data(), want.data(),
                           want.size() * sizeof(real_t)) == 0;
      };

      // Phase A: static end-to-end throughput + client-observed latency.
      std::atomic<bool> failed{false};
      std::atomic<std::uint64_t> retry_responses{0};
      std::atomic<std::uint64_t> requests_answered{0};
      std::vector<std::vector<double>> latencies(
          static_cast<std::size_t>(clients));
      std::vector<std::thread> workers;
      Timer phase_a_timer;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          try {
            net::LoopbackClient client("127.0.0.1", server.port());
            auto& samples = latencies[static_cast<std::size_t>(c)];
            samples.reserve(kRequestsPerClient);
            for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
              for (;;) {
                Timer t;
                const auto res = client.query(batch, RouteMode::kSharded);
                if (res.retry_later) {
                  ++retry_responses;
                  continue;
                }
                samples.push_back(t.seconds());
                ++requests_answered;
                if (!matches(res.answers, direct)) failed = true;
                break;
              }
            }
          } catch (...) {
            failed = true;
          }
        });
      }
      for (auto& w : workers) w.join();
      const double phase_a_seconds = phase_a_timer.seconds();
      const std::size_t phase_a_queries =
          static_cast<std::size_t>(clients) * kRequestsPerClient *
          batch.size();

      std::vector<double> sorted;
      for (const auto& s : latencies)
        sorted.insert(sorted.end(), s.begin(), s.end());
      std::sort(sorted.begin(), sorted.end());

      // Phase B: churn the mod feed through the wire while queries keep
      // flowing. Back-pressure (kRetryLater) is expected and counted; the
      // feeder retries until every modification is accepted.
      std::thread feeder([&] {
        try {
          net::LoopbackClient mod_client("127.0.0.1", server.port());
          for (int m = 0; m < kMods; ++m) {
            net::WireModification mod;
            mod.dirty_blocks = {static_cast<index_t>(
                m % static_cast<int>(stack.structure().num_blocks))};
            mod.resistance_scale = 1.05;
            while (mod_client.submit_mod(mod) ==
                   net::LoopbackClient::ModOutcome::kRetryLater) {
              ++retry_responses;
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
        } catch (...) {
          failed = true;
        }
      });
      std::vector<std::thread> churn_workers;
      std::atomic<std::uint64_t> churn_queries{0};
      for (int c = 0; c < clients; ++c) {
        churn_workers.emplace_back([&] {
          try {
            net::LoopbackClient client("127.0.0.1", server.port());
            for (std::size_t r = 0; r < kRequestsPerClient / 4; ++r) {
              const auto res = client.query(batch, RouteMode::kSharded);
              if (res.retry_later) {
                ++retry_responses;
              } else {
                ++requests_answered;
                churn_queries += batch.size();
              }
            }
          } catch (...) {
            failed = true;
          }
        });
      }
      feeder.join();
      for (auto& w : churn_workers) w.join();
      stack.flush();

      // Post-churn validation: the wire answers on the final published
      // snapshot must be bit-identical to the direct call.
      const std::vector<real_t> final_direct = stack.frontend().answer(
          batch, nullptr, RouteMode::kSharded, nullptr);
      bool identical = !failed.load();
      try {
        net::LoopbackClient verify_client("127.0.0.1", server.port());
        for (;;) {
          const auto res = verify_client.query(batch, RouteMode::kSharded);
          if (res.retry_later) {
            ++retry_responses;
            continue;
          }
          ++requests_answered;
          identical = identical && matches(res.answers, final_direct);
          break;
        }
      } catch (...) {
        identical = false;
      }
      if (stack.mods_accepted() != static_cast<std::uint64_t>(kMods)) {
        std::fprintf(stderr,
                     "ERROR: %s clients=%d accepted %llu of %d mods\n",
                     name.c_str(), clients,
                     static_cast<unsigned long long>(stack.mods_accepted()),
                     kMods);
        identical = false;
      }

      server.stop();
      const obs::MetricsSnapshot reg_snap = reg.snapshot();

      // Registry cross-checks: the net-layer counters must tell the same
      // story as the client-side tallies. Admitted er_batch requests equal
      // answered ones (each admitted request gets exactly one kAnswer),
      // and er_net_rejected_total equals the kRetryLater frames observed.
      const obs::MetricSnapshot* req_counter = reg_snap.find(
          "er_net_requests_total", {{"opcode", "er_batch"}});
      if (!req_counter || req_counter->counter != requests_answered.load()) {
        std::fprintf(stderr,
                     "ERROR: %s clients=%d er_net_requests_total"
                     "{opcode=er_batch} %llu != %llu answered requests\n",
                     name.c_str(), clients,
                     static_cast<unsigned long long>(
                         req_counter ? req_counter->counter : 0),
                     static_cast<unsigned long long>(
                         requests_answered.load()));
        all_ok = false;
      }
      const obs::MetricSnapshot* rejected_counter =
          reg_snap.find("er_net_rejected_total");
      if (!rejected_counter ||
          rejected_counter->counter != retry_responses.load()) {
        std::fprintf(stderr,
                     "ERROR: %s clients=%d er_net_rejected_total %llu != "
                     "%llu client-observed kRetryLater frames\n",
                     name.c_str(), clients,
                     static_cast<unsigned long long>(
                         rejected_counter ? rejected_counter->counter : 0),
                     static_cast<unsigned long long>(retry_responses.load()));
        all_ok = false;
      }
      all_ok = all_ok && identical;

      const SnapshotPtr final_snap = stack.store().acquire();
      const double qps = phase_a_seconds > 0.0
                             ? static_cast<double>(phase_a_queries) /
                                   phase_a_seconds
                             : 0.0;
      table.add_row(
          {name, TablePrinter::fmt_int(clients),
           TablePrinter::fmt_size(
               static_cast<long long>(requests_answered.load())),
           TablePrinter::fmt(qps / 1000.0, 1),
           TablePrinter::fmt(percentile_us(sorted, 0.50), 0),
           TablePrinter::fmt(percentile_us(sorted, 0.95), 0),
           TablePrinter::fmt(percentile_us(sorted, 0.99), 0),
           TablePrinter::fmt_size(
               static_cast<long long>(retry_responses.load())),
           identical ? "yes" : "NO"});
      auto& row = json.add_row();
      row.set("bench", "serving")
          .set("case", name)
          .set("mode", "loopback")
          .set("threads", clients)
          .set("clients", clients)
          .set("queries",
               phase_a_queries + static_cast<std::size_t>(
                                     churn_queries.load()) + batch.size())
          .set("reduced_nodes",
               static_cast<long long>(
                   final_snap->model().stats.reduced_nodes))
          .set("boundary_nodes",
               static_cast<long long>(final_snap->num_boundary_nodes()))
          .set("blocks", static_cast<int>(final_snap->num_blocks()))
          .set("queries_per_second", qps)
          .set("request_latency_p50_us", percentile_us(sorted, 0.50))
          .set("request_latency_p95_us", percentile_us(sorted, 0.95))
          .set("request_latency_p99_us", percentile_us(sorted, 0.99))
          .set("requests_total",
               static_cast<std::size_t>(requests_answered.load()))
          .set("retry_later_responses",
               static_cast<std::size_t>(retry_responses.load()))
          .set("mods_submitted", static_cast<std::size_t>(kMods))
          .set("mods_applied",
               static_cast<std::size_t>(stack.mods_accepted()))
          .set("identical", identical);
      set_query_latency_fields(row, reg_snap, RouteMode::kSharded);
      metrics_dump.merge(reg_snap);
    }
  }

  std::printf("\nServing over loopback TCP — %zu-query batches through the "
              "net/ daemon core\n(every wire answer must be bit-identical "
              "to the direct QueryFrontEnd call)\n\n",
              kBatchPerRequest);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  const int metrics_status = write_metrics_dump(metrics_dump, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: loopback serving scenario failed\n");
    return 1;
  }
  return json_status != 0 ? json_status : metrics_status;
}

/// Deterministic policy mix over the standard mixed batch, cycling eight
/// shapes by index: default, exact/kAuto with a generous deadline, reduced
/// tiers through kAuto, explicit backend preferences, a hedged fast-tier
/// query, and a deadline that the injected queue wait always expires.
std::vector<PortQuery> make_policy_batch(const ReducedModel& model,
                                         std::size_t count,
                                         std::uint64_t seed,
                                         std::uint32_t expired_deadline_us) {
  std::vector<PortQuery> batch = make_batch(model, count, seed);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    QueryPolicy& pol = batch[i].policy;
    switch (i % 8) {
      case 0:  // default policy: the pre-policy serving path
        break;
      case 1:
        pol.accuracy_tier = AccuracyTier::kExact;
        pol.deadline_us = 1'000'000;  // generous: never expires
        break;
      case 2:
        pol.accuracy_tier = AccuracyTier::kApprox;
        break;
      case 3:
        pol.accuracy_tier = AccuracyTier::kFast;
        break;
      case 4:
        pol.accuracy_tier = AccuracyTier::kFast;
        pol.backend_pref = BackendPref::kLocalApprox;
        break;
      case 5:
        pol.accuracy_tier = AccuracyTier::kApprox;
        pol.backend_pref = BackendPref::kSharded;
        break;
      case 6:
        pol.accuracy_tier = AccuracyTier::kFast;
        pol.hedge = true;
        break;
      case 7:
        pol.deadline_us = expired_deadline_us;  // always misses
        break;
    }
  }
  return batch;
}

/// Per-query policy sweep (--policy-mix, DESIGN.md §4.3): per (case,
/// threads), answer one policy-mixed batch, validating bit-identity across
/// thread counts, hedged answers against a serial two-backend twin, and
/// the er_policy_* counters against the returned BatchStats.
int run_policy_mix(const bench::BenchOptions& bopts) {
  constexpr std::size_t kBatchSize = 4000;
  // The deadline input is injected, not measured (AnswerContext::
  // queue_wait_us), so the miss set is a pure function of the batch.
  constexpr std::uint64_t kQueueWaitUs = 50;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= bopts.threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Case", "Threads", "kQPS", "Exact", "Approx", "Fast",
                      "Hedged", "EngWin", "Miss", "Identical"});
  bench::BenchJson json;
  obs::MetricsSnapshot metrics_dump;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[serving --policy-mix] %s: n=%d resistors=%zu\n",
                 name.c_str(), pg.num_nodes, pg.resistors.size());

    ReductionOptions ropts;
    ropts.num_blocks = 32;
    ropts.sparsify_quality = 1.0;
    const ReductionArtifacts art =
        reduce_network_artifacts(net, pg.port_mask(), ropts);
    ModelStore store;
    store.publish(ModelSnapshot::build(art));
    const SnapshotPtr snap = store.acquire();
    const auto batch =
        make_policy_batch(*art.model, kBatchSize, 2027,
                          static_cast<std::uint32_t>(kQueueWaitUs / 2));
    std::size_t miss_slots = 0;  // slots make_policy_batch gave an
    for (std::size_t i = 7; i < batch.size(); i += 8) ++miss_slots;  // expired deadline

    // Serial two-backend twin for the hedged slots: evaluate each leg
    // through its own un-hedged batch (engine-preferring and
    // exact-preferring), then apply the selection rule by hand. Ineligible
    // hedged queries collapse to the same exact answer on both legs, so
    // the comparison is well-defined for every hedged slot.
    std::vector<PortQuery> engine_leg = batch, exact_leg = batch;
    for (auto& query : engine_leg) {
      query.policy.hedge = false;
      query.policy.backend_pref = BackendPref::kLocalApprox;
    }
    for (auto& query : exact_leg) {
      query.policy.hedge = false;
      query.policy.backend_pref = BackendPref::kSharded;
    }
    obs::MetricsRegistry twin_reg;
    AnswerContext twin_ctx;
    twin_ctx.mode = RouteMode::kSharded;
    twin_ctx.registry = &twin_reg;
    twin_ctx.queue_wait_us = kQueueWaitUs;
    const auto engine_answers =
        QueryFrontEnd::answer_on(*snap, engine_leg, twin_ctx);
    const auto exact_answers =
        QueryFrontEnd::answer_on(*snap, exact_leg, twin_ctx);

    std::vector<real_t> serial_answers;
    for (int threads : thread_counts) {
      obs::MetricsRegistry reg;
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads, &reg);
      BatchStats stats;
      std::vector<QueryStatus> statuses;
      AnswerContext ctx;
      ctx.pool = pool.get();
      ctx.mode = RouteMode::kSharded;
      ctx.stats = &stats;
      ctx.registry = &reg;
      ctx.queue_wait_us = kQueueWaitUs;
      ctx.statuses = &statuses;
      Timer t;
      const auto answers = QueryFrontEnd::answer_on(*snap, batch, ctx);
      const double seconds = t.seconds();
      pool.reset();

      bool identical = true;
      if (threads == 1) {
        serial_answers = answers;
        // Hedged slots must match the serial two-backend twin selected
        // with the pure rule (serve/query_policy.hpp).
        for (std::size_t i = 6; i < batch.size(); i += 8) {
          const real_t want =
              hedge_prefers_engine(batch[i].policy.accuracy_tier,
                                   engine_answers[i])
                  ? engine_answers[i]
                  : exact_answers[i];
          if (!(answers[i] == want) &&
              !(answers[i] != answers[i] && want != want)) {
            std::fprintf(stderr,
                         "ERROR: %s hedged query %zu diverged from the "
                         "serial two-backend twin\n",
                         name.c_str(), i);
            identical = false;
          }
        }
        // Deadline misses: exactly the slots whose budget the injected
        // queue wait expires, answered NaN, flagged kDeadlineMiss.
        std::size_t observed_misses = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (statuses[i] == QueryStatus::kDeadlineMiss) {
            ++observed_misses;
            if (i % 8 != 7 || answers[i] == answers[i]) {
              std::fprintf(stderr,
                           "ERROR: %s query %zu misreported a deadline "
                           "miss\n",
                           name.c_str(), i);
              identical = false;
            }
          }
        }
        if (observed_misses != miss_slots ||
            stats.deadline_miss != miss_slots) {
          std::fprintf(stderr,
                       "ERROR: %s deadline misses %zu (stats %zu) != %zu "
                       "expected\n",
                       name.c_str(), observed_misses, stats.deadline_miss,
                       miss_slots);
          identical = false;
        }
      } else {
        for (std::size_t i = 0; i < answers.size(); ++i)
          identical = identical &&
                      (answers[i] == serial_answers[i] ||
                       (answers[i] != answers[i] &&
                        serial_answers[i] != serial_answers[i]));
        if (!identical)
          std::fprintf(stderr,
                       "ERROR: %s threads=%d policied batch diverged from "
                       "the 1-thread batch\n",
                       name.c_str(), threads);
      }

      // Registry cross-checks: the er_policy_* counters must tell the same
      // story as the returned BatchStats.
      const obs::MetricsSnapshot reg_snap = reg.snapshot();
      const auto counter_value = [&reg_snap](const char* family,
                                             obs::Labels labels) {
        const obs::MetricSnapshot* c = reg_snap.find(family, labels);
        return c ? c->counter : 0;
      };
      const std::uint64_t miss_counter =
          counter_value("er_policy_deadline_miss_total", {});
      const std::uint64_t hedge_counter =
          counter_value("er_policy_hedges_total",
                        {{"winner", "local-approx"}}) +
          counter_value("er_policy_hedges_total", {{"winner", "sharded"}});
      if (miss_counter != stats.deadline_miss ||
          hedge_counter != stats.hedged) {
        std::fprintf(stderr,
                     "ERROR: %s threads=%d er_policy_* counters disagree "
                     "with BatchStats (miss %llu/%zu, hedges %llu/%zu)\n",
                     name.c_str(), threads,
                     static_cast<unsigned long long>(miss_counter),
                     stats.deadline_miss,
                     static_cast<unsigned long long>(hedge_counter),
                     stats.hedged);
        identical = false;
      }
      const std::uint64_t served_exact =
          counter_value("er_policy_served_total", {{"tier", "exact"}});
      const std::uint64_t served_approx =
          counter_value("er_policy_served_total", {{"tier", "approx"}});
      const std::uint64_t served_fast =
          counter_value("er_policy_served_total", {{"tier", "fast"}});
      all_ok = all_ok && identical;

      const double qps =
          seconds > 0.0 ? static_cast<double>(batch.size()) / seconds : 0.0;
      const double hedge_win_engine =
          stats.hedged > 0 ? static_cast<double>(stats.hedge_won_engine) /
                                 static_cast<double>(stats.hedged)
                           : 0.0;
      table.add_row(
          {name, TablePrinter::fmt_int(threads),
           TablePrinter::fmt(qps / 1000.0, 1),
           TablePrinter::fmt_size(static_cast<long long>(served_exact)),
           TablePrinter::fmt_size(static_cast<long long>(served_approx)),
           TablePrinter::fmt_size(static_cast<long long>(served_fast)),
           TablePrinter::fmt_size(static_cast<long long>(stats.hedged)),
           TablePrinter::fmt(hedge_win_engine, 2),
           TablePrinter::fmt_size(
               static_cast<long long>(stats.deadline_miss)),
           identical ? "yes" : "NO"});
      auto& row = json.add_row();
      row.set("bench", "serving")
          .set("case", name)
          .set("mode", "policy-mix")
          .set("threads", threads)
          .set("queries", batch.size())
          .set("reduced_nodes",
               static_cast<long long>(snap->model().stats.reduced_nodes))
          .set("boundary_nodes",
               static_cast<long long>(snap->num_boundary_nodes()))
          .set("blocks", static_cast<int>(snap->num_blocks()))
          .set("queries_per_second", qps)
          .set("served_exact", static_cast<long long>(served_exact))
          .set("served_approx", static_cast<long long>(served_approx))
          .set("served_fast", static_cast<long long>(served_fast))
          .set("hedged_queries", stats.hedged)
          .set("hedge_win_fraction_engine", hedge_win_engine)
          .set("deadline_misses", stats.deadline_miss)
          .set("queue_wait_us_injected", kQueueWaitUs)
          .set("identical", identical);
      set_query_latency_fields(row, reg_snap, RouteMode::kSharded);
      // Per-tier latency percentiles from the er_policy_latency_seconds
      // histograms (zeros when a tier saw no traffic).
      for (const char* tier : {"exact", "approx", "fast"}) {
        const obs::MetricSnapshot* h = reg_snap.find(
            "er_policy_latency_seconds", {{"tier", tier}});
        const auto us = [h](double q) {
          return h ? h->histogram.quantile(q) * 1e6 : 0.0;
        };
        const std::string prefix = std::string("policy_latency_") + tier;
        row.set(prefix + "_p50_us", us(0.50))
            .set(prefix + "_p95_us", us(0.95))
            .set(prefix + "_p99_us", us(0.99));
      }
      metrics_dump.merge(reg_snap);
    }
  }

  std::printf("\nServing with per-query policies — %zu-query batches mixing "
              "tiers, hedges, and deadlines\n(batches must be bit-identical "
              "across thread counts; hedged answers must match the serial "
              "two-backend twin)\n\n",
              kBatchSize);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  const int metrics_status = write_metrics_dump(metrics_dump, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: policy-mix serving scenario failed\n");
    return 1;
  }
  return json_status != 0 ? json_status : metrics_status;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions bopts = bench::parse_bench_args(
      argc, argv, "BENCH_serving.json", /*default_threads=*/8,
      /*allow_churn=*/true);
  if (bopts.loopback) return run_loopback(bopts);
  if (bopts.policy_mix) return run_policy_mix(bopts);
  if (bopts.zipf > 0.0) return run_zipf(bopts);
  if (bopts.churn) return run_churn(bopts);
  constexpr std::size_t kBatchSize = 10000;

  std::vector<int> thread_counts{1};
  for (int t = 2; t <= bopts.threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Case", "|V_red|", "Boundary", "Mode", "Threads",
                      "Batch(s)", "kQPS", "Speedup", "Identical"});
  bench::BenchJson json;
  obs::MetricsSnapshot metrics_dump;
  bool all_ok = true;

  for (const auto& [name, pg] : bench::table2_suite()) {
    const ConductanceNetwork net = pg.to_network();
    std::fprintf(stderr, "[serving] %s: n=%d resistors=%zu\n", name.c_str(),
                 pg.num_nodes, pg.resistors.size());

    ReductionOptions ropts;
    ropts.num_blocks = 32;
    ropts.sparsify_quality = 1.0;
    const ReductionArtifacts art =
        reduce_network_artifacts(net, pg.port_mask(), ropts);

    ModelStore store;
    store.publish(ModelSnapshot::build(art));
    const SnapshotPtr snap = store.acquire();
    const auto batch = make_batch(*art.model, kBatchSize, 2027);

    // Serial single-model reference: the whole batch through the monolithic
    // factor on one thread. Doubles as the (monolithic, 1 thread) row so
    // that configuration isn't computed twice. Each measured row gets its
    // own registry, so its latency histogram covers exactly one batch.
    obs::MetricsRegistry reference_reg;
    BatchStats reference_stats;
    Timer reference_timer;
    const auto reference =
        QueryFrontEnd(&store, &reference_reg)
            .answer(batch, nullptr, RouteMode::kMonolithic,
                    &reference_stats);
    const double reference_seconds = reference_timer.seconds();
    const obs::MetricsSnapshot reference_snap = reference_reg.snapshot();
    metrics_dump.merge(reference_snap);

    for (RouteMode mode : {RouteMode::kSharded, RouteMode::kMonolithic,
                           RouteMode::kLocalApprox}) {
      std::vector<real_t> serial_answers;
      double serial_seconds = 0.0;
      double max_rel_vs_reference = 0.0;
      for (int threads : thread_counts) {
        BatchStats stats;
        std::vector<real_t> answers;
        double seconds = 0.0;
        obs::MetricsSnapshot row_snap;
        if (mode == RouteMode::kMonolithic && threads == 1) {
          answers = reference;
          stats = reference_stats;
          seconds = reference_seconds;
          row_snap = reference_snap;
        } else {
          // Registry declared before the pool: the pool's destructor
          // still updates its thread gauge.
          obs::MetricsRegistry row_reg;
          std::unique_ptr<ThreadPool> pool;
          if (threads > 1)
            pool = std::make_unique<ThreadPool>(threads, &row_reg);
          Timer t;
          answers = QueryFrontEnd(&store, &row_reg)
                        .answer(batch, pool.get(), mode, &stats);
          seconds = t.seconds();
          pool.reset();
          row_snap = row_reg.snapshot();
          metrics_dump.merge(row_snap);
        }
        // Per-query latency coverage: every query of the batch must have
        // recorded exactly one sample on this route mode.
        const obs::MetricSnapshot* row_hist = row_snap.find(
            "er_query_latency_seconds", {{"mode", to_string(mode)}});
        if (!row_hist || row_hist->histogram.count != batch.size()) {
          std::fprintf(stderr,
                       "ERROR: %s/%s threads=%d er_query_latency_seconds "
                       "count != %zu batch queries\n",
                       name.c_str(), to_string(mode), threads, batch.size());
          all_ok = false;
        }

        bool identical = true;
        if (threads == 1) {
          serial_answers = answers;
          serial_seconds = seconds;
          // How far the mode strays from the serial single-model answers
          // (exact modes: solver-roundoff; local-approx: model error).
          for (std::size_t i = 0; i < answers.size(); ++i) {
            const double rel = std::abs(answers[i] - reference[i]) /
                               (1.0 + std::abs(reference[i]));
            max_rel_vs_reference = std::max(max_rel_vs_reference, rel);
          }
          if (mode != RouteMode::kLocalApprox &&
              max_rel_vs_reference > 1e-8) {
            std::fprintf(stderr,
                         "ERROR: %s/%s diverged from the serial single-model "
                         "reference (max rel %.3g)\n",
                         name.c_str(), to_string(mode), max_rel_vs_reference);
            all_ok = false;
          }
        } else {
          for (std::size_t i = 0; i < answers.size(); ++i)
            identical = identical && answers[i] == serial_answers[i];
          all_ok = all_ok && identical;
        }

        const double qps =
            seconds > 0.0 ? static_cast<double>(batch.size()) / seconds : 0.0;
        const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
        table.add_row({name, TablePrinter::fmt_size(snap->model().stats.reduced_nodes),
                       TablePrinter::fmt_size(snap->num_boundary_nodes()),
                       to_string(mode), TablePrinter::fmt_int(threads),
                       TablePrinter::fmt(seconds, 3),
                       TablePrinter::fmt(qps / 1000.0, 1),
                       TablePrinter::fmt(speedup, 2) + "x",
                       identical ? "yes" : "NO"});
        auto& row = json.add_row();
        row.set("bench", "serving")
            .set("case", name)
            .set("mode", to_string(mode))
            .set("threads", threads)
            .set("queries", batch.size())
            .set("reduced_nodes",
                 static_cast<long long>(snap->model().stats.reduced_nodes))
            .set("boundary_nodes",
                 static_cast<long long>(snap->num_boundary_nodes()))
            .set("blocks", static_cast<int>(snap->num_blocks()))
            .set("snapshot_build_seconds", snap->build_seconds())
            .set("wall_seconds", seconds)
            .set("queries_per_second", qps)
            .set("speedup", speedup)
            .set("identical", identical)
            .set("cross_block_queries", stats.cross_block)
            .set("engine_answered", stats.engine_answered)
            .set("max_rel_vs_monolithic", max_rel_vs_reference);
        set_query_latency_fields(row, row_snap, mode);
      }
    }
  }

  std::printf("\nServing throughput — mixed %zu-query batches through the "
              "ModelStore\n(speedup relative to the same mode at 1 thread; "
              "batches must be bit-identical)\n\n",
              kBatchSize);
  table.print();
  const int json_status = bench::write_json_or_report(json, bopts);
  const int metrics_status = write_metrics_dump(metrics_dump, bopts);
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: serving answers diverged\n");
    return 1;
  }
  return json_status != 0 ? json_status : metrics_status;
}
