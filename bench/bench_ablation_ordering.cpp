// Ablation C — effect of the fill-reducing ordering on the filled-graph
// depth (dpt), factor size, approximate-inverse size and accuracy. The
// paper observes that dpt stays moderate on real-world graphs; the ordering
// is the lever that controls it.
#include <cstdio>

#include "effres/approx_chol.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "graph/generators.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace er;

  struct CaseDef {
    const char* name;
    Graph graph;
  };
  CaseDef cases[] = {
      {"grid2d", grid_2d(er::bench::scaled(130), er::bench::scaled(130),
                         WeightKind::kUniform, 27)},
      {"grid3d", grid_3d(er::bench::scaled(22), er::bench::scaled(22),
                         er::bench::scaled(22), WeightKind::kUniform, 28)},
      {"barabasi-albert",
       barabasi_albert(er::bench::scaled(12000), 3, WeightKind::kUnit, 29)},
  };

  struct OrdDef {
    const char* name;
    Ordering ord;
  };
  const OrdDef orderings[] = {
      {"natural", Ordering::kNatural},
      {"rcm", Ordering::kRcm},
      {"mindeg", Ordering::kMinDeg},
  };

  TablePrinter table({"Graph", "Ordering", "T(s)", "nnz(L)", "dpt",
                      "nnz(Z)/nlogn", "Ea"});

  for (auto& c : cases) {
    const ExactEffRes exact(c.graph);
    for (const auto& o : orderings) {
      ApproxCholOptions opts;
      opts.ordering = o.ord;
      Timer t;
      const ApproxCholEffRes engine(c.graph, opts);
      for (const auto& e : c.graph.edges()) (void)engine.resistance(e.u, e.v);
      const double secs = t.seconds();
      const ErrorReport rep = measure_edge_errors(c.graph, engine, exact, 300);
      table.add_row(
          {c.name, o.name, TablePrinter::fmt(secs, 3),
           TablePrinter::fmt_int(engine.stats().factor_nnz),
           TablePrinter::fmt_int(engine.stats().max_depth),
           TablePrinter::fmt(engine.stats().nnz_ratio(c.graph.num_nodes()), 2),
           TablePrinter::fmt_sci(rep.average_relative)});
    }
  }

  std::printf("Ablation C — ordering vs depth / fill / accuracy\n\n");
  table.print();
  table.write_csv("bench_ablation_ordering.csv");
  return 0;
}
