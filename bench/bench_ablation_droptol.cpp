// Ablation B — §III-C claim: replacing the complete Cholesky factorization
// with incomplete Cholesky (drop tolerance) does not introduce large errors
// in effective resistances, while shrinking the factor and the build time.
#include <cstdio>

#include "effres/approx_chol.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "graph/generators.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace er;

  struct CaseDef {
    const char* name;
    Graph graph;
  };
  const index_t s = er::bench::scaled(150);
  CaseDef cases[] = {
      {"grid2d-logU", grid_2d(s, s, WeightKind::kLogUniform, 17)},
      {"multilayer-mesh",
       multilayer_mesh(er::bench::scaled(100), er::bench::scaled(100), 3,
                       WeightKind::kLogUniform, 18)},
  };

  TablePrinter table({"Graph", "droptol", "T(s)", "nnz(L)", "nnz(Z)/nlogn",
                      "dpt", "Ea", "Em"});

  for (auto& c : cases) {
    const ExactEffRes exact(c.graph);
    for (real_t droptol : {0.0, 1e-4, 1e-3, 1e-2, 1e-1}) {
      ApproxCholOptions opts;
      opts.droptol = droptol;
      opts.complete_factorization = droptol == 0.0;
      Timer t;
      const ApproxCholEffRes engine(c.graph, opts);
      for (const auto& e : c.graph.edges()) (void)engine.resistance(e.u, e.v);
      const double secs = t.seconds();
      const ErrorReport rep = measure_edge_errors(c.graph, engine, exact, 500);
      table.add_row(
          {c.name, TablePrinter::fmt_sci(droptol), TablePrinter::fmt(secs, 3),
           TablePrinter::fmt_int(engine.stats().factor_nnz),
           TablePrinter::fmt(engine.stats().nnz_ratio(c.graph.num_nodes()), 2),
           TablePrinter::fmt_int(engine.stats().max_depth),
           TablePrinter::fmt_sci(rep.average_relative),
           TablePrinter::fmt_sci(rep.max_relative)});
    }
  }

  std::printf("Ablation B — incomplete-Cholesky drop tolerance\n");
  std::printf("(droptol=0 is the complete factor; the paper runs 1e-3)\n\n");
  table.print();
  table.write_csv("bench_ablation_droptol.csv");
  return 0;
}
