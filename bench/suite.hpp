// Shared benchmark-suite definitions: the synthetic stand-ins for the
// paper's Table I graphs and the ibmpg-like grids of Table II, plus a
// scale knob so the benches run on small machines.
//
// Scale control: environment variable ER_BENCH_SCALE in {tiny, small,
// medium} (default medium). "tiny" exists for CI smoke runs; reported
// numbers in EXPERIMENTS.md use medium.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "pg/generator.hpp"

namespace er::bench {

inline double scale_factor() {
  const char* env = std::getenv("ER_BENCH_SCALE");
  // Default "small": the full bench sweep stays ~15 minutes on one core.
  // "medium" doubles linear sizes (4x nodes) for the numbers quoted in
  // EXPERIMENTS.md scalability notes.
  if (!env) return 0.5;
  const std::string s(env);
  if (s == "tiny") return 0.25;
  if (s == "small") return 0.5;
  if (s == "medium") return 1.0;
  return 1.0;
}

struct SuiteCase {
  std::string name;     // paper-case this stands in for, suffixed "-like"
  std::string family;   // generator family
  Graph graph;
  /// The paper skips the baseline on its largest case (">10 hours"); large
  /// cases here mirror that with a flag.
  bool run_baseline = true;
};

inline index_t scaled(index_t v) {
  const double f = scale_factor();
  return std::max<index_t>(static_cast<index_t>(v * f), 16);
}

/// The Table I suite. Families match the paper's sources: social networks
/// (BA/RMAT/WS), finite-element meshes (3D grids), 2D circuit matrices
/// (weighted 2D grids), power grids (multilayer meshes). Sizes are scaled
/// down from the paper (see DESIGN.md §2); relative comparisons carry over.
inline std::vector<SuiteCase> table1_suite() {
  std::vector<SuiteCase> suite;
  auto add = [&suite](std::string name, std::string family, Graph g,
                      bool baseline = true) {
    suite.push_back(
        {std::move(name), std::move(family), std::move(g), baseline});
  };

  add("com-DBLP-like", "barabasi-albert",
      barabasi_albert(scaled(30000), 3, WeightKind::kUnit, 101));
  add("com-Amaz-like", "watts-strogatz",
      watts_strogatz(scaled(30000), 3, 0.1, WeightKind::kUnit, 102));
  add("com-Yout-like", "rmat",
      rmat(15, static_cast<std::size_t>(scaled(30000)) * 3, 0.57, 0.19, 0.19,
           WeightKind::kUnit, 103));
  add("coAuDBLP-like", "barabasi-albert",
      barabasi_albert(scaled(25000), 3, WeightKind::kUnit, 104));
  add("coAuCite-like", "barabasi-albert",
      barabasi_albert(scaled(20000), 3, WeightKind::kUnit, 105));
  add("fe-tooth-like", "grid3d",
      grid_3d(scaled(30), scaled(30), scaled(30), WeightKind::kUniform, 106));
  add("fe-rotor-like", "grid3d",
      grid_3d(scaled(34), scaled(34), scaled(32), WeightKind::kUniform, 107));
  add("NACA0015-like", "grid2d",
      grid_2d(scaled(300), scaled(300), WeightKind::kUniform, 108));
  add("ibmpg5-like", "multilayer-mesh",
      multilayer_mesh(scaled(220), scaled(220), 3, WeightKind::kLogUniform, 109));
  add("ibmpg6-like", "multilayer-mesh",
      multilayer_mesh(scaled(280), scaled(280), 3, WeightKind::kLogUniform, 110));
  add("thupg1-like", "multilayer-mesh",
      multilayer_mesh(scaled(340), scaled(340), 3, WeightKind::kLogUniform, 111));
  add("G2-circuit-like", "grid2d",
      grid_2d(scaled(390), scaled(390), WeightKind::kLogUniform, 112));
  add("G3-circuit-like", "grid2d",
      grid_2d(scaled(500), scaled(500), WeightKind::kLogUniform, 113));
  // Scalability showcase; the paper's baseline exceeds 10 hours here and is
  // reported as "-".
  add("thupg10-like", "multilayer-mesh",
      multilayer_mesh(scaled(600), scaled(600), 4, WeightKind::kLogUniform, 114),
      /*baseline=*/false);
  return suite;
}

/// Table II grids: ibmpg2..6-like presets scaled to the bench budget
/// (~1e4 .. ~1.2e5 nodes at the default small scale — roughly a tenth of
/// the IBM benchmarks' linear size).
inline std::vector<std::pair<std::string, PowerGrid>> table2_suite() {
  std::vector<std::pair<std::string, PowerGrid>> grids;
  const double f = scale_factor();
  for (int idx = 2; idx <= 6; ++idx) {
    PgGeneratorOptions o = ibmpg_like_preset(idx, static_cast<real_t>(1.3 * f));
    grids.emplace_back("ibmpg" + std::to_string(idx) + "-like",
                       generate_power_grid(o));
  }
  return grids;
}

}  // namespace er::bench
