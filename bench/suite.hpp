// Shared benchmark-suite definitions: the synthetic stand-ins for the
// paper's Table I graphs and the ibmpg-like grids of Table II, plus a
// scale knob so the benches run on small machines.
//
// Scale control: environment variable ER_BENCH_SCALE in {tiny, small,
// medium} (default medium). "tiny" exists for CI smoke runs; reported
// numbers in EXPERIMENTS.md use medium.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"
#include "pg/generator.hpp"
#include "reduction/pipeline.hpp"

namespace er::bench {

// ---------------------------------------------------------------------------
// Command-line plumbing shared by the bench mains.
// ---------------------------------------------------------------------------

struct BenchOptions {
  /// Worker threads for parallel reduction / batched ER queries.
  /// 0 = auto (hardware concurrency); set via --threads N.
  int threads = 1;
  /// Machine-readable results file (BENCH_*.json); set via --json PATH,
  /// empty disables JSON output.
  std::string json_path;
  /// Mixed update+query mode (bench_serving only; set via --churn): stream
  /// modifications through an AsyncUpdater while querying, measuring
  /// publish latency / staleness / QPS-under-churn instead of the static
  /// route-mode sweep.
  bool churn = false;
  /// Prometheus text-exposition dump of the run's metrics registries
  /// (bench_serving only; set via --metrics PATH, empty disables). The
  /// per-iteration registries are folded into one run-level snapshot with
  /// MetricsSnapshot::merge before export.
  std::string metrics_path;
  /// Zipf skew exponent for the query generator (bench_serving only; set
  /// via --zipf S, 0 disables). With --churn this switches the churn run
  /// into the result-cache scenario: Zipf(S)-distributed queries over a
  /// fixed pair pool, reporting cache hit rate and QPS with/without the
  /// cache. S around 1.0-1.2 matches typical skewed serving traffic.
  double zipf = 0.0;
  /// Loopback serving mode (bench_serving only; set via --loopback): run
  /// the net/ Server + ServingStack in-process and drive it with real
  /// LoopbackClient TCP connections, measuring end-to-end request QPS and
  /// client-observed latency percentiles instead of direct library calls.
  bool loopback = false;
  /// Per-query policy mode (bench_serving only; set via --policy-mix):
  /// answer a batch carrying a deterministic mix of QueryPolicy settings
  /// (accuracy tiers, hedged queries, deadlines) at 1/2/4/8 threads,
  /// reporting per-tier latency percentiles, hedge win fractions, and
  /// deadline misses. Answers must stay bit-identical across thread counts
  /// and match a serial two-backend twin.
  bool policy_mix = false;
};

/// Zipf(s)-distributed sampler over ranks [0, n): P(k) proportional to
/// 1 / (k+1)^s. Built once (O(n) table of cumulative weights), sampled by
/// binary search over one Rng draw — deterministic per seed, so bench runs
/// are reproducible at any thread count.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cumulative_(n, 0.0) {
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cumulative_[k] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  /// Rank in [0, size()) for one uniform draw in [0, 1).
  [[nodiscard]] std::size_t sample(double uniform01) const {
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(),
                                     uniform01);
    if (it == cumulative_.end()) return cumulative_.size() - 1;
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized CDF over ranks
};

/// Strict non-negative integer parse; exits with usage on garbage so a
/// typo'd --threads can't silently mean "0 = all hardware cores".
inline int parse_thread_count(const char* prog, const std::string& text) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || v < 0 ||
      v > 4096) {
    std::fprintf(stderr, "%s: --threads expects an integer in [0, 4096], got '%s'\n",
                 prog, text.c_str());
    std::exit(2);
  }
  return static_cast<int>(v);
}

/// Strict Zipf-exponent parse: finite, in [0, 8] (s > ~8 degenerates to
/// "always rank 0" and usually means a typo'd value).
inline double parse_zipf_exponent(const char* prog, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(v) || v < 0.0 || v > 8.0) {
    std::fprintf(stderr, "%s: --zipf expects a number in [0, 8], got '%s'\n",
                 prog, text.c_str());
    std::exit(2);
  }
  return v;
}

inline BenchOptions parse_bench_args(int argc, char** argv,
                                     std::string default_json,
                                     int default_threads = 1,
                                     bool allow_churn = false) {
  BenchOptions o;
  o.threads = default_threads;
  o.json_path = std::move(default_json);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      o.threads = parse_thread_count(argv[0], argv[++i]);
    } else if (a.rfind("--threads=", 0) == 0) {
      o.threads = parse_thread_count(argv[0], a.substr(10));
    } else if (a == "--json" && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      o.json_path = a.substr(7);
    } else if (a == "--metrics" && i + 1 < argc) {
      o.metrics_path = argv[++i];
    } else if (a.rfind("--metrics=", 0) == 0) {
      o.metrics_path = a.substr(10);
    } else if (allow_churn && a == "--churn") {
      o.churn = true;
    } else if (allow_churn && a == "--zipf" && i + 1 < argc) {
      o.zipf = parse_zipf_exponent(argv[0], argv[++i]);
    } else if (allow_churn && a.rfind("--zipf=", 0) == 0) {
      o.zipf = parse_zipf_exponent(argv[0], a.substr(7));
    } else if (allow_churn && a == "--loopback") {
      o.loopback = true;
    } else if (allow_churn && a == "--policy-mix") {
      o.policy_mix = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--json PATH] "
                   "[--metrics PATH]%s\n"
                   "  --threads N    worker threads (0 = hardware)\n"
                   "  --json PATH    machine-readable output ('' disables)\n"
                   "  --metrics PATH Prometheus text dump of run metrics "
                   "('' disables)\n%s",
                   argv[0],
                   allow_churn
                       ? " [--churn] [--zipf S] [--loopback] [--policy-mix]"
                       : "",
                   allow_churn
                       ? "  --churn        mixed update+query mode "
                         "(publish latency / staleness / QPS)\n"
                         "  --zipf S       with --churn: Zipf(S)-skewed "
                         "queries through the result cache\n"
                         "  --loopback     serve over real loopback TCP "
                         "through the net/ daemon core\n"
                         "  --policy-mix   per-query QueryPolicy sweep "
                         "(tiers / hedging / deadlines)\n"
                       : "");
      std::exit(a == "--help" ? 0 : 2);
    }
  }
  o.threads = resolve_num_threads(o.threads);
  return o;
}

// ---------------------------------------------------------------------------
// Minimal JSON emitter for BENCH_*.json result files: an array of flat
// objects, one per measured configuration.
// ---------------------------------------------------------------------------

class BenchJson {
 public:
  class Row {
   public:
    Row& set(const std::string& key, double v) {
      // Bare nan/inf tokens are invalid JSON; emit null so a degenerate
      // metric can't make the whole file unparseable.
      if (!std::isfinite(v)) return raw(key, "null");
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      return raw(key, buf);
    }
    Row& set(const std::string& key, long long v) {
      return raw(key, std::to_string(v));
    }
    Row& set(const std::string& key, int v) {
      return raw(key, std::to_string(v));
    }
    Row& set(const std::string& key, std::size_t v) {
      return raw(key, std::to_string(v));
    }
    Row& set(const std::string& key, bool v) {
      return raw(key, v ? "true" : "false");
    }
    Row& set(const std::string& key, const std::string& v) {
      return raw(key, "\"" + escaped(v) + "\"");
    }
    Row& set(const std::string& key, const char* v) {
      return set(key, std::string(v));
    }

   private:
    friend class BenchJson;
    static std::string escaped(const std::string& s) {
      std::string out;
      out.reserve(s.size());
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      return out;
    }
    Row& raw(const std::string& key, const std::string& value) {
      if (!body_.empty()) body_ += ", ";
      body_ += "\"" + escaped(key) + "\": " + value;
      return *this;
    }
    std::string body_;
  };

  /// Append a row; the reference stays valid until write().
  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Write the accumulated rows as a JSON array. No-op on empty path.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << "  {" << rows_[i].body_ << "}" << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "]\n";
    return static_cast<bool>(out);
  }

 private:
  std::deque<Row> rows_;
};

/// Emit a ReductionStats timing breakdown with explicit wall/CPU labels.
/// `*_wall_seconds` are disjoint stage spans of the run (each <= total);
/// `*_cpu_seconds` are per-block phase timings summed over blocks that may
/// run concurrently, so they can exceed the wall-clock totals in
/// multi-thread runs — they measure work, not elapsed time (see the
/// single-block caveat on ReductionStats: a lone block's nested queries
/// fan out across the pool, understating its CPU-seconds).
inline void set_reduction_stats(BenchJson::Row& row, const ReductionStats& s) {
  row.set("partition_wall_seconds", s.partition_seconds)
      .set("reduce_wall_seconds", s.reduce_seconds)
      .set("stitch_wall_seconds", s.stitch_seconds)
      .set("total_wall_seconds", s.total_seconds)
      .set("schur_cpu_seconds", s.schur_cpu_seconds)
      .set("er_cpu_seconds", s.er_cpu_seconds)
      .set("sparsify_cpu_seconds", s.sparsify_cpu_seconds);
}

/// Shared bench epilogue: write BENCH_*.json (if enabled), report the
/// outcome, and return the process exit code contribution (0 ok, 1 fail).
inline int write_json_or_report(const BenchJson& json,
                                const BenchOptions& opts) {
  if (opts.json_path.empty()) return 0;
  if (json.write(opts.json_path)) {
    std::printf("JSON written to %s\n", opts.json_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
  return 1;
}

inline double scale_factor() {
  const char* env = std::getenv("ER_BENCH_SCALE");
  // Default "small": the full bench sweep stays ~15 minutes on one core.
  // "medium" doubles linear sizes (4x nodes) for the numbers quoted in
  // EXPERIMENTS.md scalability notes.
  if (!env) return 0.5;
  const std::string s(env);
  if (s == "tiny") return 0.25;
  if (s == "small") return 0.5;
  if (s == "medium") return 1.0;
  return 1.0;
}

struct SuiteCase {
  std::string name;     // paper-case this stands in for, suffixed "-like"
  std::string family;   // generator family
  Graph graph;
  /// The paper skips the baseline on its largest case (">10 hours"); large
  /// cases here mirror that with a flag.
  bool run_baseline = true;
};

inline index_t scaled(index_t v) {
  const double f = scale_factor();
  return std::max<index_t>(static_cast<index_t>(v * f), 16);
}

/// The Table I suite. Families match the paper's sources: social networks
/// (BA/RMAT/WS), finite-element meshes (3D grids), 2D circuit matrices
/// (weighted 2D grids), power grids (multilayer meshes). Sizes are scaled
/// down from the paper (see DESIGN.md §2); relative comparisons carry over.
inline std::vector<SuiteCase> table1_suite() {
  std::vector<SuiteCase> suite;
  auto add = [&suite](std::string name, std::string family, Graph g,
                      bool baseline = true) {
    suite.push_back(
        {std::move(name), std::move(family), std::move(g), baseline});
  };

  add("com-DBLP-like", "barabasi-albert",
      barabasi_albert(scaled(30000), 3, WeightKind::kUnit, 101));
  add("com-Amaz-like", "watts-strogatz",
      watts_strogatz(scaled(30000), 3, 0.1, WeightKind::kUnit, 102));
  add("com-Yout-like", "rmat",
      rmat(15, static_cast<std::size_t>(scaled(30000)) * 3, 0.57, 0.19, 0.19,
           WeightKind::kUnit, 103));
  add("coAuDBLP-like", "barabasi-albert",
      barabasi_albert(scaled(25000), 3, WeightKind::kUnit, 104));
  add("coAuCite-like", "barabasi-albert",
      barabasi_albert(scaled(20000), 3, WeightKind::kUnit, 105));
  add("fe-tooth-like", "grid3d",
      grid_3d(scaled(30), scaled(30), scaled(30), WeightKind::kUniform, 106));
  add("fe-rotor-like", "grid3d",
      grid_3d(scaled(34), scaled(34), scaled(32), WeightKind::kUniform, 107));
  add("NACA0015-like", "grid2d",
      grid_2d(scaled(300), scaled(300), WeightKind::kUniform, 108));
  add("ibmpg5-like", "multilayer-mesh",
      multilayer_mesh(scaled(220), scaled(220), 3, WeightKind::kLogUniform, 109));
  add("ibmpg6-like", "multilayer-mesh",
      multilayer_mesh(scaled(280), scaled(280), 3, WeightKind::kLogUniform, 110));
  add("thupg1-like", "multilayer-mesh",
      multilayer_mesh(scaled(340), scaled(340), 3, WeightKind::kLogUniform, 111));
  add("G2-circuit-like", "grid2d",
      grid_2d(scaled(390), scaled(390), WeightKind::kLogUniform, 112));
  add("G3-circuit-like", "grid2d",
      grid_2d(scaled(500), scaled(500), WeightKind::kLogUniform, 113));
  // Scalability showcase; the paper's baseline exceeds 10 hours here and is
  // reported as "-".
  add("thupg10-like", "multilayer-mesh",
      multilayer_mesh(scaled(600), scaled(600), 4, WeightKind::kLogUniform, 114),
      /*baseline=*/false);
  return suite;
}

/// Table II grids: ibmpg2..6-like presets scaled to the bench budget
/// (~1e4 .. ~1.2e5 nodes at the default small scale — roughly a tenth of
/// the IBM benchmarks' linear size).
inline std::vector<std::pair<std::string, PowerGrid>> table2_suite() {
  std::vector<std::pair<std::string, PowerGrid>> grids;
  const double f = scale_factor();
  for (int idx = 2; idx <= 6; ++idx) {
    PgGeneratorOptions o = ibmpg_like_preset(idx, static_cast<real_t>(1.3 * f));
    grids.emplace_back("ibmpg" + std::to_string(idx) + "-like",
                       generate_power_grid(o));
  }
  return grids;
}

}  // namespace er::bench
