// Table II (upper) reproduction: graph-sparsification-based power grid
// reduction for transient analysis on ibmpg-like grids.
//
// Four configurations per grid, as in the paper:
//   Original                 — transient on the full grid,
//   w/ Acc. Eff. Res.        — Alg. 1 with exact effective resistances,
//   w/ App. Eff. Res. ([1])  — Alg. 1 with the random-projection baseline,
//   w/ App. Eff. Res. (Alg.3)— Alg. 1 with the paper's method.
// Reporting: |V|(|E|) of the model, T_red, T_tr, Err (mV), Rel (%).
#include <algorithm>
#include <cstdio>

#include "pg/analysis.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

using namespace er;

struct RunResult {
  index_t nodes = 0;
  std::size_t edges = 0;
  double t_red = 0.0;
  double t_tr = 0.0;
  double err_mv = 0.0;
  double rel_pct = 0.0;
};

RunResult run_reduced(const PowerGrid& pg, const ConductanceNetwork& net,
                      const TransientResult& reference, double max_drop,
                      const TransientOptions& topts, ErBackend backend) {
  ReductionOptions ropts;
  ropts.backend = backend;
  ropts.sparsify_quality = 1.0;
  ropts.merge_threshold = 0.02;
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);

  const auto ports = pg.port_nodes();
  std::vector<index_t> red_ports;
  red_ports.reserve(ports.size());
  for (index_t p : ports)
    red_ports.push_back(m.node_map[static_cast<std::size_t>(p)]);

  const TransientResult red =
      run_transient(m.network, map_capacitances(m, pg.capacitance_vector()),
                    map_loads(m, pg.loads), topts, red_ports);
  const SolutionError err = compare_transient(reference, red, max_drop);

  RunResult r;
  r.nodes = m.stats.reduced_nodes;
  r.edges = m.stats.reduced_edges;
  r.t_red = m.stats.total_seconds;
  r.t_tr = red.total_seconds();
  r.err_mv = err.err_volts * 1e3;
  r.rel_pct = err.rel * 1e2;
  return r;
}

}  // namespace

int main() {
  const auto grids = er::bench::table2_suite();
  TablePrinter table({"Case", "Orig |V|(|E|)", "Orig Ttr", "Method",
                      "|V|(|E|)", "Tred", "Ttr", "Err(mV)", "Rel(%)"});

  TransientOptions topts;
  topts.step = 2e-11;
  topts.steps = 1000;  // paper: 1000 fixed-size steps

  double sum_speedup_red = 0.0, sum_speedup_total = 0.0;
  int count = 0;

  for (const auto& [name, pg] : grids) {
    std::fprintf(stderr, "[table2t] %s: n=%d resistors=%zu ports=%zu\n",
                 name.c_str(), pg.num_nodes, pg.resistors.size(),
                 pg.port_nodes().size());
    const ConductanceNetwork net = pg.to_network();
    const auto ports = pg.port_nodes();

    const TransientResult full = run_transient(
        net, pg.capacitance_vector(), pg.loads, topts, ports);
    double max_drop = 0.0;
    for (const auto& s : full.series)
      for (real_t v : s) max_drop = std::max(max_drop, std::abs(v));

    const std::string osize =
        TablePrinter::fmt_size(pg.num_nodes) + "(" +
        TablePrinter::fmt_size(static_cast<long long>(pg.resistors.size())) +
        ")";

    struct Config {
      const char* label;
      ErBackend backend;
    };
    const Config configs[] = {
        {"Acc.ER", ErBackend::kExact},
        {"AppER[1]", ErBackend::kRandomProjection},
        {"Alg.3", ErBackend::kApproxChol},
    };

    double t_red_exact = 0.0, t_tr_exact = 0.0;
    for (const Config& cfg : configs) {
      const RunResult r =
          run_reduced(pg, net, full, max_drop, topts, cfg.backend);
      table.add_row(
          {name, osize, TablePrinter::fmt(full.total_seconds(), 2), cfg.label,
           TablePrinter::fmt_size(r.nodes) + "(" +
               TablePrinter::fmt_size(static_cast<long long>(r.edges)) + ")",
           TablePrinter::fmt(r.t_red, 3), TablePrinter::fmt(r.t_tr, 2),
           TablePrinter::fmt(r.err_mv, 3), TablePrinter::fmt(r.rel_pct, 2)});
      if (cfg.backend == ErBackend::kExact) {
        t_red_exact = r.t_red;
        t_tr_exact = r.t_tr;
      } else if (cfg.backend == ErBackend::kApproxChol) {
        sum_speedup_red += t_red_exact / std::max(r.t_red, 1e-9);
        sum_speedup_total += (t_red_exact + t_tr_exact) /
                             std::max(r.t_red + r.t_tr, 1e-9);
        ++count;
      }
    }
  }

  std::printf("\nTable II (upper) — PG reduction for transient analysis\n");
  std::printf("(1000 backward-Euler steps, one factorization per model)\n\n");
  table.print();
  if (count > 0) {
    std::printf("\nAvg reduction-time speedup, Alg.3 vs accurate ER: %.1fx\n",
                sum_speedup_red / count);
    std::printf("Avg total-time speedup, Alg.3 vs accurate ER: %.1fx\n",
                sum_speedup_total / count);
  }
  table.write_csv("bench_table2_transient.csv");
  std::printf("\nCSV written to bench_table2_transient.csv\n");
  return 0;
}
