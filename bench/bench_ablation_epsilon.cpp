// Ablation A — Eq. (26) claim: the relative error of effective resistances
// scales linearly with the truncation parameter epsilon, while nnz(Z) and
// runtime shrink as epsilon grows. Swept on a mesh-like and a social-like
// graph with a complete factor (droptol 0) to isolate the epsilon effect,
// then with the paper's droptol.
#include <cstdio>

#include "effres/approx_chol.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "graph/generators.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace er;

  struct CaseDef {
    const char* name;
    Graph graph;
  };
  const index_t s = er::bench::scaled(120);
  CaseDef cases[] = {
      {"grid2d", grid_2d(s, s, WeightKind::kUniform, 7)},
      {"barabasi-albert",
       barabasi_albert(er::bench::scaled(12000), 3, WeightKind::kUnit, 8)},
  };

  TablePrinter table({"Graph", "droptol", "epsilon", "T(s)", "Ea", "Em",
                      "nnz(Z)/nlogn", "Ea/epsilon"});

  for (auto& c : cases) {
    const ExactEffRes exact(c.graph);
    for (real_t droptol : {0.0, 1e-3}) {
      for (real_t eps : {1e-1, 1e-2, 1e-3, 1e-4}) {
        ApproxCholOptions opts;
        opts.droptol = droptol;
        opts.epsilon = eps;
        opts.complete_factorization = droptol == 0.0;
        Timer t;
        const ApproxCholEffRes engine(c.graph, opts);
        for (const auto& e : c.graph.edges())
          (void)engine.resistance(e.u, e.v);
        const double secs = t.seconds();
        const ErrorReport rep =
            measure_edge_errors(c.graph, engine, exact, 500);
        table.add_row({c.name, TablePrinter::fmt_sci(droptol),
                       TablePrinter::fmt_sci(eps), TablePrinter::fmt(secs, 3),
                       TablePrinter::fmt_sci(rep.average_relative),
                       TablePrinter::fmt_sci(rep.max_relative),
                       TablePrinter::fmt(
                           engine.stats().nnz_ratio(c.graph.num_nodes()), 2),
                       TablePrinter::fmt(rep.average_relative / eps, 3)});
      }
    }
  }

  std::printf("Ablation A — error vs epsilon (Eq. (26): error ~ alpha*eps)\n");
  std::printf("With droptol=0 the factor is complete, isolating epsilon;\n");
  std::printf("Ea/epsilon staying roughly flat confirms the linear law.\n\n");
  table.print();
  table.write_csv("bench_ablation_epsilon.csv");
  return 0;
}
