// Microbenchmarks (google-benchmark) backing the §III-C complexity
// analysis: SpMV, orderings, complete/incomplete factorization, Alg. 2
// build, and per-query cost of the three effective-resistance engines.
#include <benchmark/benchmark.h>

#include "approxinv/approx_inverse.hpp"
#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "order/mindeg.hpp"
#include "order/rcm.hpp"
#include "util/rng.hpp"

namespace {

using namespace er;

Graph bench_graph(index_t side) {
  return grid_2d(side, side, WeightKind::kUniform, 42);
}

void BM_SpMV(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const Graph g = bench_graph(side);
  const CscMatrix l = grounded_laplacian(g);
  std::vector<real_t> x(static_cast<std::size_t>(l.cols()), 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(l.rows()));
  for (auto _ : state) {
    l.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(l.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(64)->Arg(128)->Arg(256);

void BM_MinDegOrdering(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const CscMatrix l = grounded_laplacian(bench_graph(side));
  for (auto _ : state) {
    auto perm = mindeg_order(l);
    benchmark::DoNotOptimize(perm.data());
  }
}
BENCHMARK(BM_MinDegOrdering)->Arg(64)->Arg(128);

void BM_RcmOrdering(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const CscMatrix l = grounded_laplacian(bench_graph(side));
  for (auto _ : state) {
    auto perm = rcm_order(l);
    benchmark::DoNotOptimize(perm.data());
  }
}
BENCHMARK(BM_RcmOrdering)->Arg(64)->Arg(128);

void BM_CompleteCholesky(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const CscMatrix l = grounded_laplacian(bench_graph(side));
  const auto perm = mindeg_order(l);
  for (auto _ : state) {
    auto f = cholesky(l, perm);
    benchmark::DoNotOptimize(f.values.data());
  }
}
BENCHMARK(BM_CompleteCholesky)->Arg(64)->Arg(128);

void BM_IncompleteCholesky(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const CscMatrix l = grounded_laplacian(bench_graph(side));
  const auto perm = mindeg_order(l);
  IcholOptions opts;  // droptol 1e-3 (paper setting)
  for (auto _ : state) {
    auto f = ichol(l, perm, opts);
    benchmark::DoNotOptimize(f.values.data());
  }
}
BENCHMARK(BM_IncompleteCholesky)->Arg(64)->Arg(128)->Arg(256);

void BM_ApproxInverseBuild(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const CscMatrix l = grounded_laplacian(bench_graph(side));
  IcholOptions iopts;
  const CholFactor f = ichol(l, Ordering::kMinDeg, iopts);
  for (auto _ : state) {
    auto z = ApproxInverse::build(f);
    benchmark::DoNotOptimize(z.nnz());
  }
}
BENCHMARK(BM_ApproxInverseBuild)->Arg(64)->Arg(128)->Arg(256);

void BM_QueryAlg3(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const Graph g = bench_graph(side);
  const ApproxCholEffRes engine(g, {});
  Rng rng(1);
  const index_t n = g.num_nodes();
  for (auto _ : state) {
    const index_t p = rng.uniform_int(n);
    const index_t q = rng.uniform_int(n);
    benchmark::DoNotOptimize(engine.resistance(p, q == p ? (p + 1) % n : q));
  }
}
BENCHMARK(BM_QueryAlg3)->Arg(64)->Arg(128)->Arg(256);

void BM_QueryExact(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const Graph g = bench_graph(side);
  const ExactEffRes engine(g);
  Rng rng(2);
  const index_t n = g.num_nodes();
  for (auto _ : state) {
    const index_t p = rng.uniform_int(n);
    const index_t q = rng.uniform_int(n);
    benchmark::DoNotOptimize(engine.resistance(p, q == p ? (p + 1) % n : q));
  }
}
BENCHMARK(BM_QueryExact)->Arg(64)->Arg(128);

void BM_QueryRandomProjection(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const Graph g = bench_graph(side);
  RandomProjectionOptions opts;
  opts.auto_scale = 8.0;
  const RandomProjectionEffRes engine(g, opts);
  Rng rng(3);
  const index_t n = g.num_nodes();
  for (auto _ : state) {
    const index_t p = rng.uniform_int(n);
    const index_t q = rng.uniform_int(n);
    benchmark::DoNotOptimize(engine.resistance(p, q == p ? (p + 1) % n : q));
  }
}
BENCHMARK(BM_QueryRandomProjection)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
