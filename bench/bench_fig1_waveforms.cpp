// Fig. 1 reproduction: transient waveforms of two nodes — one close to a
// pad ("VDD node": small drop) and one deep in the load region ("GND-side
// node": large drop) — simulated on the original grid and on the reduced
// grid (Alg. 3 reduction), overlaid.
//
// Output: bench_fig1_waveforms.csv with columns
//   time_ns, vdd_node_original, vdd_node_reduced, far_node_original,
//   far_node_reduced     (voltages, i.e. Vdd - drop)
// plus a printed summary of the overlay error per probe.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "pg/analysis.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace er;

  // ibmpg3t-like grid (the case plotted in the paper).
  PgGeneratorOptions gopts =
      ibmpg_like_preset(3, static_cast<real_t>(1.3 * er::bench::scale_factor()));
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();
  std::fprintf(stderr, "[fig1] grid: n=%d resistors=%zu\n", pg.num_nodes,
               pg.resistors.size());

  // Probe selection: the pad-adjacent port with the smallest DC drop and
  // the load with the largest DC drop.
  const DcSolution dc = solve_dc(net, pg.load_vector(0.0));
  index_t vdd_node = pg.pads.front().node;
  index_t far_node = pg.loads.front().node;
  for (const auto& p : pg.pads)
    if (dc.drops[static_cast<std::size_t>(p.node)] <
        dc.drops[static_cast<std::size_t>(vdd_node)])
      vdd_node = p.node;
  for (const auto& l : pg.loads)
    if (dc.drops[static_cast<std::size_t>(l.node)] >
        dc.drops[static_cast<std::size_t>(far_node)])
      far_node = l.node;

  TransientOptions topts;
  topts.step = 1e-11;
  topts.steps = 1000;  // 10 ns window, as plotted in the paper

  const std::vector<index_t> probes{vdd_node, far_node};
  const TransientResult full =
      run_transient(net, pg.capacitance_vector(), pg.loads, topts, probes);

  ReductionOptions ropts;  // Alg. 3 backend by default
  ropts.sparsify_quality = 1.0;
  ropts.merge_threshold = 0.02;
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
  std::vector<index_t> red_probes;
  for (index_t p : probes)
    red_probes.push_back(m.node_map[static_cast<std::size_t>(p)]);
  const TransientResult red =
      run_transient(m.network, map_capacitances(m, pg.capacitance_vector()),
                    map_loads(m, pg.loads), topts, red_probes);

  CsvWriter csv("bench_fig1_waveforms.csv",
                {"time_ns", "vdd_node_original", "vdd_node_reduced",
                 "far_node_original", "far_node_reduced"});
  double max_err[2] = {0.0, 0.0};
  for (int k = 0; k < topts.steps; ++k) {
    const double t_ns = (k + 1) * topts.step * 1e9;
    const double rows[2][2] = {
        {pg.vdd - full.series[0][static_cast<std::size_t>(k)],
         pg.vdd - red.series[0][static_cast<std::size_t>(k)]},
        {pg.vdd - full.series[1][static_cast<std::size_t>(k)],
         pg.vdd - red.series[1][static_cast<std::size_t>(k)]}};
    csv.add_row({t_ns, rows[0][0], rows[0][1], rows[1][0], rows[1][1]});
    for (int p = 0; p < 2; ++p)
      max_err[p] = std::max(max_err[p], std::abs(rows[p][0] - rows[p][1]));
  }

  std::printf("Fig. 1 — transient waveforms, original vs reduced "
              "(ibmpg3t-like)\n\n");
  std::printf("grid: %d nodes -> reduced %d nodes (%.1fx)\n", pg.num_nodes,
              m.stats.reduced_nodes,
              static_cast<double>(pg.num_nodes) /
                  std::max<index_t>(m.stats.reduced_nodes, 1));
  std::printf("probe 1 (VDD-side node %d): max |V_orig - V_red| = %.3f mV\n",
              vdd_node, max_err[0] * 1e3);
  std::printf("probe 2 (load node %d):     max |V_orig - V_red| = %.3f mV\n",
              far_node, max_err[1] * 1e3);

  // Print a coarse sample of the series so the shape is visible in logs.
  TablePrinter t({"t (ns)", "V(vdd node) orig", "V(vdd node) red",
                  "V(load node) orig", "V(load node) red"});
  for (int k = 0; k < topts.steps; k += topts.steps / 10) {
    t.add_row({TablePrinter::fmt((k + 1) * topts.step * 1e9, 2),
               TablePrinter::fmt(pg.vdd - full.series[0][static_cast<std::size_t>(k)], 4),
               TablePrinter::fmt(pg.vdd - red.series[0][static_cast<std::size_t>(k)], 4),
               TablePrinter::fmt(pg.vdd - full.series[1][static_cast<std::size_t>(k)], 4),
               TablePrinter::fmt(pg.vdd - red.series[1][static_cast<std::size_t>(k)], 4)});
  }
  std::printf("\n");
  t.print();
  std::printf("\nFull series written to bench_fig1_waveforms.csv\n");
  return 0;
}
